"""Measurement-tool substrate.

Simulated equivalents of the external measurement services the paper
relies on: commercial VPN vantage points, RIPE-Atlas-style probes, the
IPInfo geolocation database, the MAnycast2 anycast census, CAIDA's
HOIHO PTR-hostname geohints, RIPE IPmap's cached geolocations and
PeeringDB records.
"""

from repro.measure.vpn import VpnCatalog, VantagePoint
from repro.measure.atlas import AtlasProbe, AtlasClient, PingResult
from repro.measure.ipinfo import IpInfoDatabase, IpInfoEntry
from repro.measure.manycast import MAnycastSnapshot
from repro.measure.hoiho import PtrTable, HoihoExtractor
from repro.measure.ipmap import IpMapCache
from repro.measure.peeringdb import PeeringDb, PeeringDbRecord

__all__ = [
    "VpnCatalog",
    "VantagePoint",
    "AtlasProbe",
    "AtlasClient",
    "PingResult",
    "IpInfoDatabase",
    "IpInfoEntry",
    "MAnycastSnapshot",
    "PtrTable",
    "HoihoExtractor",
    "IpMapCache",
    "PeeringDb",
    "PeeringDbRecord",
]
