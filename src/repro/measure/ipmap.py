"""RIPE IPmap cached geolocations.

Step 4 of the paper's geolocation process consults the cached results
of RIPE's IPmap when PTR hints are unavailable.  The cache covers only
a subset of addresses -- infrastructure that RIPE Atlas anchors have
previously triangulated -- so a miss is a normal outcome.
"""

from __future__ import annotations

from typing import Optional


class IpMapCache:
    """A read-only cache of previously triangulated addresses."""

    def __init__(self) -> None:
        self._cache: dict[int, str] = {}

    def store(self, address: int, country: str) -> None:
        """Populate the cache (done by the generator)."""
        self._cache[address] = country

    def lookup(self, address: int) -> Optional[str]:
        """Cached country for ``address`` (None on cache miss)."""
        return self._cache.get(address)

    @property
    def coverage(self) -> int:
        """Number of cached addresses."""
        return len(self._cache)


__all__ = ["IpMapCache"]
