"""IPInfo-style geolocation database.

Step 1 of the paper's server-geolocation process queries IPInfo for
every collected address (Section 3.5).  Darwich et al. report that 89%
of IPInfo targets are accurate within ~40 km, so the simulated database
is built from ground truth with configurable error injection: a small
fraction of entries carries the wrong city (same country) and a smaller
fraction the wrong country entirely -- the case the verification stages
exist to catch.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.session import FaultSession


@dataclasses.dataclass(frozen=True)
class IpInfoEntry:
    """One database row: claimed location of an address."""

    address: int
    country: str
    city: str
    lat: float
    lon: float


class IpInfoDatabase:
    """Queryable snapshot of the geolocation database."""

    def __init__(self) -> None:
        self._entries: dict[int, IpInfoEntry] = {}

    def add(self, entry: IpInfoEntry) -> None:
        """Insert or overwrite the row for ``entry.address``."""
        self._entries[entry.address] = entry

    def lookup(
        self, address: int, faults: Optional["FaultSession"] = None
    ) -> Optional[IpInfoEntry]:
        """The claimed location of ``address`` (None if unknown).

        An injected lookup failure that exhausts its retries returns
        None too: downstream geolocation already treats an unknown
        address via the multistage fallback, so the query degrades into
        the paper's existing path instead of raising.
        """
        if faults is not None and faults.operation_fails("ipinfo", address):
            return None
        return self._entries.get(address)

    def country_of(
        self, address: int, faults: Optional["FaultSession"] = None
    ) -> Optional[str]:
        """Claimed country of ``address`` (None if unknown)."""
        entry = self.lookup(address, faults=faults)
        return entry.country if entry else None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[IpInfoEntry]:
        return iter(self._entries.values())


__all__ = ["IpInfoEntry", "IpInfoDatabase"]
