"""MAnycast2-style anycast census snapshot.

Step 2 of the geolocation process consults a data snapshot from
MAnycast2 (Sommese et al.) to decide whether an address is anycast.
The snapshot is a set of flagged addresses; like the real system it can
miss some anycast deployments (false negatives) and occasionally flag a
unicast address (false positives), so consumers must treat it as a
measurement, not truth.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class MAnycastSnapshot:
    """A point-in-time census of detected anycast addresses."""

    def __init__(self, detected: Iterable[int] = ()) -> None:
        self._detected = set(detected)

    def flag(self, address: int) -> None:
        """Record ``address`` as detected-anycast."""
        self._detected.add(address)

    def is_anycast(self, address: int) -> bool:
        """Whether the snapshot flags ``address`` as anycast."""
        return address in self._detected

    def __len__(self) -> int:
        return len(self._detected)

    def __iter__(self) -> Iterator[int]:
        return iter(self._detected)


__all__ = ["MAnycastSnapshot"]
