"""HOIHO-style geolocation hints from router/server PTR hostnames.

CAIDA's HOIHO learns regular expressions that extract geographic hints
(city tokens, IATA-like codes, ISO country labels) from DNS PTR
records (Section 3.5, step 4).  The simulated PTR table is written by
the generator in three "operator dialects":

* ``city`` dialect -- embeds a normalized city token and a country
  label, e.g. ``ae1.cr2.frankfurt3.de.bb.provider.net``;
* ``ntt`` dialect -- an NTT-like convention the paper says it added an
  extra regex for, e.g. ``ge-0-1-2.a15.tokyjp01.provider-gin.net``
  (city prefix + ISO country squeezed into one token);
* ``opaque`` dialect -- no geographic information (extraction misses).

The extractor mirrors HOIHO: a handful of regexes plus a dictionary of
known city tokens.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.world.cities import CITIES, EXTRA_TERRITORIES


def normalize_city(name: str) -> str:
    """Normalize a city name into a hostname-safe token."""
    return "".join(ch for ch in name.lower() if ch.isalnum())


def _build_city_tokens() -> dict[str, str]:
    tokens: dict[str, str] = {}
    for code, cities in CITIES.items():
        for city in cities:
            tokens.setdefault(normalize_city(city.name), code)
    for code, (_name, _region, _continent, city) in EXTRA_TERRITORIES.items():
        tokens.setdefault(normalize_city(city.name), code)
    return tokens


#: Map of normalized city tokens to country codes (the "learned dictionary").
CITY_TOKENS: dict[str, str] = _build_city_tokens()

#: Country labels that may legitimately appear as hostname components.
_COUNTRY_LABELS = set(code.lower() for code in CITY_TOKENS.values())

_CITY_LABEL_RE = re.compile(r"^([a-z]+?)(\d*)$")
_NTT_TOKEN_RE = re.compile(r"^([a-z]{4})([a-z]{2})(\d{2})$")


class PtrTable:
    """PTR records of the synthetic Internet (ip -> reverse name)."""

    def __init__(self) -> None:
        self._records: dict[int, str] = {}

    def add(self, address: int, name: str) -> None:
        """Publish the PTR record for ``address``."""
        self._records[address] = name.lower()

    def lookup(self, address: int) -> Optional[str]:
        """Reverse name of ``address`` (None when unset)."""
        return self._records.get(address)

    def items(self):
        """Iterate over (address, reverse name) pairs."""
        return self._records.items()

    def __len__(self) -> int:
        return len(self._records)


class HoihoExtractor:
    """Extracts a country hint from a PTR name, if any."""

    def __init__(self, ptr_table: PtrTable) -> None:
        self._ptr = ptr_table

    def country_hint(self, address: int) -> Optional[str]:
        """Country suggested by the PTR record of ``address`` (or None)."""
        name = self._ptr.lookup(address)
        if name is None:
            return None
        return self.extract(name)

    def extract(self, ptr_name: str) -> Optional[str]:
        """Apply the regex/dictionary cascade to one PTR name."""
        labels = ptr_name.lower().split(".")
        # NTT-like dialect: a single token packs city prefix + ISO country.
        for label in labels:
            match = _NTT_TOKEN_RE.match(label)
            if match and match.group(2) in _COUNTRY_LABELS:
                return match.group(2).upper()
        # City-token dialect: a label is a known city token (+ site index),
        # usually corroborated by an adjacent bare country label.
        for label in labels:
            match = _CITY_LABEL_RE.match(label)
            if not match:
                continue
            token = match.group(1)
            country = CITY_TOKENS.get(token)
            if country is not None:
                return country
        # Bare country label as its own component (e.g. ".de.").
        for label in labels[1:-1]:  # never the host part or the TLD
            if len(label) == 2 and label in _COUNTRY_LABELS:
                return label.upper()
        return None


__all__ = [
    "normalize_city",
    "CITY_TOKENS",
    "PtrTable",
    "HoihoExtractor",
]
