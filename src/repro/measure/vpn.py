"""Commercial-VPN vantage points.

The study accesses every government site from *within* the target
country through NordVPN, Surfshark or Hotspot Shield exits (Sections
3.2 and 4.1), and validates the claimed VPN location with the same
geolocation machinery used for servers.  A vantage point here is an
exit location (capital city of the target country) tied to the VPN
provider Table 9 lists for that country.
"""

from __future__ import annotations

import dataclasses

from repro.world.cities import capital_of, cities_of
from repro.world.countries import COUNTRIES


@dataclasses.dataclass(frozen=True)
class VantagePoint:
    """A VPN exit inside a target country."""

    country: str
    provider: str
    city: str
    lat: float
    lon: float

    @property
    def coordinates(self) -> tuple[float, float]:
        return (self.lat, self.lon)


class VpnCatalog:
    """Hands out the vantage point used for each sample country."""

    def __init__(self) -> None:
        self._vantages: dict[str, VantagePoint] = {}
        for code, country in COUNTRIES.items():
            capital = capital_of(code)
            self._vantages[code] = VantagePoint(
                country=code,
                provider=country.vpn_provider,
                city=capital.name,
                lat=capital.lat,
                lon=capital.lon,
            )

    def vantage_for(self, country_code: str) -> VantagePoint:
        """The in-country VPN exit for ``country_code``."""
        return self._vantages[country_code.upper()]

    def fallback_vantage(self, country_code: str) -> VantagePoint:
        """An alternate in-country exit for when the primary is down.

        VPN providers run exits in several cities of popular countries;
        when the capital exit keeps refusing connections the fault layer
        re-selects the provider's exit in the next city of the country.
        Countries with a single city fall back to the primary itself
        (the retry policy is the only recovery available there).
        """
        code = country_code.upper()
        primary = self._vantages[code]
        for city in cities_of(code):
            if city.name != primary.city:
                return VantagePoint(
                    country=code,
                    provider=primary.provider,
                    city=city.name,
                    lat=city.lat,
                    lon=city.lon,
                )
        return primary

    def provider_usage(self) -> dict[str, int]:
        """Number of countries reached through each VPN provider.

        The paper reports NordVPN (49), Surfshark (10) and Hotspot
        Shield (2).
        """
        usage: dict[str, int] = {}
        for vantage in self._vantages.values():
            usage[vantage.provider] = usage.get(vantage.provider, 0) + 1
        return usage

    def validate_location(self, vantage: VantagePoint) -> bool:
        """Sanity-check that the vantage's coordinates lie in its country.

        Mirrors footnote 2 of the paper (validating claimed VPN server
        locations); in the simulator exits are placed at capitals, so this
        is a consistency check of the catalog itself.
        """
        capital = capital_of(vantage.country)
        return abs(capital.lat - vantage.lat) < 1e-6 and abs(capital.lon - vantage.lon) < 1e-6

    def __len__(self) -> int:
        return len(self._vantages)


__all__ = ["VantagePoint", "VpnCatalog"]
