"""Commercial-VPN vantage points.

The study accesses every government site from *within* the target
country through NordVPN, Surfshark or Hotspot Shield exits (Sections
3.2 and 4.1), and validates the claimed VPN location with the same
geolocation machinery used for servers.  A vantage point here is an
exit location (capital city of the target country) tied to the VPN
provider Table 9 lists for that country.

Countries with several cities expose *alternate* exits of the same
provider; :meth:`VpnCatalog.vantage_at` hands them out by rank (0 is
the primary capital exit), which is what the scenario sweep's
vantage-sensitivity axis and the fault layer's re-selection both build
on.  Lookups for unknown countries or exhausted ranks raise
:class:`UnknownVantageError` naming the country and listing what *is*
available, instead of a bare ``KeyError``/``IndexError``.
"""

from __future__ import annotations

import dataclasses

from repro.world.cities import capital_of, cities_of
from repro.world.countries import COUNTRIES


class UnknownVantageError(KeyError):
    """No vantage exists for the requested country or rank.

    Raised with a message naming the offending country code and listing
    the available vantages (country codes for an unknown country, exit
    cities for an exhausted alternate rank), so a scenario matrix or
    fault profile referencing a bad vantage fails with context instead
    of a raw lookup error.  Derives from :class:`KeyError` so existing
    ``except KeyError`` call sites keep working.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.message


@dataclasses.dataclass(frozen=True)
class VantagePoint:
    """A VPN exit inside a target country."""

    country: str
    provider: str
    city: str
    lat: float
    lon: float

    @property
    def coordinates(self) -> tuple[float, float]:
        return (self.lat, self.lon)


class VpnCatalog:
    """Hands out the vantage point used for each sample country."""

    def __init__(self) -> None:
        self._vantages: dict[str, VantagePoint] = {}
        #: Per-country exit list (primary first, then alternates in city
        #: declaration order), memoized by :meth:`vantages_of`.
        self._exits: dict[str, tuple[VantagePoint, ...]] = {}
        for code, country in COUNTRIES.items():
            capital = capital_of(code)
            self._vantages[code] = VantagePoint(
                country=code,
                provider=country.vpn_provider,
                city=capital.name,
                lat=capital.lat,
                lon=capital.lon,
            )

    def _require(self, country_code: str) -> str:
        code = country_code.upper()
        if code not in self._vantages:
            raise UnknownVantageError(
                f"no VPN vantage for country {code!r}; "
                f"{len(self._vantages)} countries available: "
                f"{', '.join(sorted(self._vantages))}"
            )
        return code

    def vantages_of(self, country_code: str) -> tuple[VantagePoint, ...]:
        """Every exit of ``country_code``'s provider, primary first.

        The primary is the capital exit :meth:`vantage_for` returns;
        alternates follow in the country's city declaration order.
        """
        code = self._require(country_code)
        exits = self._exits.get(code)
        if exits is None:
            primary = self._vantages[code]
            alternates = tuple(
                VantagePoint(
                    country=code,
                    provider=primary.provider,
                    city=city.name,
                    lat=city.lat,
                    lon=city.lon,
                )
                for city in cities_of(code)
                if city.name != primary.city
            )
            exits = (primary,) + alternates
            self._exits[code] = exits
        return exits

    def vantage_for(self, country_code: str) -> VantagePoint:
        """The in-country VPN exit for ``country_code``."""
        return self._vantages[self._require(country_code)]

    def vantage_at(self, country_code: str, rank: int) -> VantagePoint:
        """The ``rank``-th exit of the country (0 = the primary).

        Scenario sweeps measure vantage sensitivity by re-running a
        country's scan from ``rank >= 1`` alternates.  A rank beyond the
        provider's exit list raises :class:`UnknownVantageError` listing
        the exits that do exist.
        """
        if rank < 0:
            raise ValueError(f"vantage rank must be >= 0, got {rank}")
        exits = self.vantages_of(country_code)
        if rank >= len(exits):
            raise UnknownVantageError(
                f"vantage rank {rank} exhausted for {exits[0].country}: only "
                f"{len(exits)} exit(s) available "
                f"({', '.join(v.city for v in exits)})"
            )
        return exits[rank]

    def alternate_count(self, country_code: str) -> int:
        """How many non-primary exits the country's provider runs."""
        return len(self.vantages_of(country_code)) - 1

    def fallback_vantage(
        self, country_code: str, rank: int = 0
    ) -> VantagePoint:
        """An alternate in-country exit for when exit ``rank`` is down.

        VPN providers run exits in several cities of popular countries;
        when the selected exit keeps refusing connections the fault
        layer re-selects the provider's next exit of the country.
        Countries with nothing beyond ``rank`` fall back to the ranked
        exit itself (the retry policy is the only recovery there).
        """
        if rank < 0:
            raise ValueError(f"vantage rank must be >= 0, got {rank}")
        exits = self.vantages_of(country_code)
        if rank >= len(exits):
            raise UnknownVantageError(
                f"vantage rank {rank} exhausted for {exits[0].country}: only "
                f"{len(exits)} exit(s) available "
                f"({', '.join(v.city for v in exits)})"
            )
        if rank + 1 < len(exits):
            return exits[rank + 1]
        return exits[rank]

    def provider_usage(self) -> dict[str, int]:
        """Number of countries reached through each VPN provider.

        The paper reports NordVPN (49), Surfshark (10) and Hotspot
        Shield (2).
        """
        usage: dict[str, int] = {}
        for vantage in self._vantages.values():
            usage[vantage.provider] = usage.get(vantage.provider, 0) + 1
        return usage

    def validate_location(self, vantage: VantagePoint) -> bool:
        """Sanity-check that the vantage's coordinates lie in its country.

        Mirrors footnote 2 of the paper (validating claimed VPN server
        locations); in the simulator exits are placed at capitals, so this
        is a consistency check of the catalog itself.
        """
        capital = capital_of(vantage.country)
        return abs(capital.lat - vantage.lat) < 1e-6 and abs(capital.lon - vantage.lon) < 1e-6

    def __len__(self) -> int:
        return len(self._vantages)


__all__ = ["UnknownVantageError", "VantagePoint", "VpnCatalog"]
