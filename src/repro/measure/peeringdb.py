"""PeeringDB records for network classification.

Section 3.4 of the paper classifies ASes as government-operated by
inspecting PeeringDB entries: the network name, the associated
organization, free-text notes (e.g. AS26810 noting "U.S. Dept. of
Health and Human Services") and the listed website.  PeeringDB's
coverage is partial -- many government networks have no record at all,
which is why the paper falls back to WHOIS and web searches.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.session import FaultSession


@dataclasses.dataclass(frozen=True)
class PeeringDbRecord:
    """The subset of a PeeringDB ``net`` object the classifier reads."""

    asn: int
    name: str
    org: str
    website: Optional[str] = None
    notes: str = ""

    def text_fields(self) -> tuple[str, ...]:
        """All free-text fields, for keyword scanning."""
        fields = [self.name, self.org, self.notes]
        if self.website:
            fields.append(self.website)
        return tuple(fields)


class PeeringDb:
    """Queryable snapshot of PeeringDB ``net`` records."""

    def __init__(self) -> None:
        self._records: dict[int, PeeringDbRecord] = {}

    def add(self, record: PeeringDbRecord) -> None:
        """Insert a record (one per ASN)."""
        if record.asn in self._records:
            raise ValueError(f"duplicate PeeringDB record for AS{record.asn}")
        self._records[record.asn] = record

    def lookup(
        self, asn: int, faults: Optional["FaultSession"] = None
    ) -> Optional[PeeringDbRecord]:
        """Record for ``asn`` (None when the network never registered).

        An injected fetch failure that exhausts its retries also yields
        None — PeeringDB coverage is partial anyway, so the ownership
        cascade degrades to its WHOIS/web-search fallbacks (Section 3.4).
        """
        if faults is not None and faults.operation_fails("peeringdb", asn):
            return None
        return self._records.get(asn)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[PeeringDbRecord]:
        return iter(self._records.values())


__all__ = ["PeeringDbRecord", "PeeringDb"]
