"""RIPE-Atlas-style active probing.

Section 3.5 of the paper uses up to five RIPE Atlas probes per country,
sending three pings to each candidate address and comparing the minimum
RTT against a per-country threshold derived from road distances.  The
simulated client reproduces that interface: probes are placed in the
cities of each country, pings traverse the latency model, anycast
targets answer from the probe's catchment, and unresponsive targets
time out.
"""

from __future__ import annotations

import dataclasses
import random
from typing import TYPE_CHECKING, Optional, Sequence

from repro.datagen.seeds import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.session import FaultSession
from repro.netsim.fabric import ServingFabric
from repro.netsim.latency import LatencyModel
from repro.world.cities import cities_of
from repro.world.geography import haversine_km

DEFAULT_PING_COUNT = 3
DEFAULT_PROBES_PER_COUNTRY = 5


@dataclasses.dataclass(frozen=True)
class AtlasProbe:
    """A measurement probe anchored in a city."""

    probe_id: int
    country: str
    city: str
    lat: float
    lon: float


@dataclasses.dataclass(frozen=True)
class PingResult:
    """Outcome of pinging one address from one probe."""

    probe: AtlasProbe
    address: int
    rtts_ms: tuple[float, ...]

    @property
    def responded(self) -> bool:
        return bool(self.rtts_ms)

    @property
    def min_rtt_ms(self) -> Optional[float]:
        """Minimum RTT over the ping train (None on timeout)."""
        return min(self.rtts_ms) if self.rtts_ms else None


class AtlasClient:
    """Issues pings from a global probe mesh against the serving fabric."""

    def __init__(
        self,
        fabric: ServingFabric,
        latency: LatencyModel,
        country_codes: Sequence[str],
        rng: random.Random,
        probes_per_country: int = DEFAULT_PROBES_PER_COUNTRY,
    ) -> None:
        self._fabric = fabric
        self._latency = latency
        # Jitter is keyed per (probe, target) rather than drawn from a
        # shared stream: a ping train's RTTs are then a pure function of
        # the probe and address, independent of measurement order.  That
        # property is what lets parallel pipeline shards reproduce the
        # serial run bit-for-bit (repro.exec), and makes the ping memo
        # below a sound cache rather than a behavior change.
        self._seed = rng.getrandbits(64)
        self._ping_cache: dict[tuple[int, int, int], PingResult] = {}
        self._probes: dict[str, list[AtlasProbe]] = {}
        next_id = 1
        for code in country_codes:
            probes: list[AtlasProbe] = []
            cities = cities_of(code)
            for index in range(min(probes_per_country, max(len(cities), 1))):
                city = cities[index % len(cities)]
                probes.append(
                    AtlasProbe(
                        probe_id=next_id,
                        country=code,
                        city=city.name,
                        lat=city.lat,
                        lon=city.lon,
                    )
                )
                next_id += 1
            self._probes[code] = probes

    def probes_in(self, country_code: str, limit: int = DEFAULT_PROBES_PER_COUNTRY) -> list[AtlasProbe]:
        """Up to ``limit`` probes located in ``country_code`` (may be empty)."""
        return self._probes.get(country_code.upper(), [])[:limit]

    def all_probes(self) -> list[AtlasProbe]:
        """Every probe in the mesh."""
        return [probe for probes in self._probes.values() for probe in probes]

    def ping(
        self,
        probe: AtlasProbe,
        address: int,
        count: int = DEFAULT_PING_COUNT,
        faults: Optional["FaultSession"] = None,
    ) -> PingResult:
        """Send ``count`` pings from ``probe`` to ``address`` (memoized).

        With a fault session, the ping train is subject to injected
        probe timeouts (retried with simulated backoff; exhausting the
        retries times the train out) and congestion spikes on individual
        samples.  Faulted results are memoized on the session — fault
        outcomes are scoped to the scanning country — while the shared
        cache keeps serving the fault-free path untouched.
        """
        key = (probe.probe_id, address, count)
        if faults is None:
            cached = self._ping_cache.get(key)
        else:
            cached = faults.ping_memo.get(key)
        if cached is not None:
            return cached
        if faults is not None and faults.operation_fails(
            "probe", probe.probe_id, address
        ):
            # The probe never got an answer back: indistinguishable from
            # an unresponsive target, so downstream geolocation degrades
            # through the same None-RTT handling it already has.
            result = PingResult(probe=probe, address=address, rtts_ms=())
        elif not self._fabric.responds_to_ping(address):
            result = PingResult(probe=probe, address=address, rtts_ms=())
        else:
            site = self._fabric.server_site(address, probe.lat, probe.lon)
            distance = haversine_km(probe.lat, probe.lon, site.lat, site.lon)
            rng = random.Random(
                derive_seed(self._seed, "ping", probe.probe_id, address)
            )
            rtts = tuple(
                self._latency.rtt_for_distance(
                    distance,
                    rng,
                    extra_ms=(
                        faults.congestion_ms(probe.probe_id, address, sample)
                        if faults is not None
                        else 0.0
                    ),
                )
                for sample in range(count)
            )
            result = PingResult(probe=probe, address=address, rtts_ms=rtts)
        if faults is None:
            self._ping_cache[key] = result
        else:
            faults.ping_memo[key] = result
        return result

    def min_rtt_from_country(
        self,
        country_code: str,
        address: int,
        probe_limit: int = DEFAULT_PROBES_PER_COUNTRY,
        count: int = DEFAULT_PING_COUNT,
        faults: Optional["FaultSession"] = None,
    ) -> Optional[float]:
        """Minimum RTT to ``address`` over all probes of a country.

        Returns None when the country has no probes or the target never
        responds.
        """
        best: Optional[float] = None
        for probe in self.probes_in(country_code, probe_limit):
            result = self.ping(probe, address, count, faults=faults)
            if result.min_rtt_ms is None:
                continue
            if best is None or result.min_rtt_ms < best:
                best = result.min_rtt_ms
        return best

    def nearest_probe_rtt(
        self,
        address: int,
        count: int = DEFAULT_PING_COUNT,
        faults: Optional["FaultSession"] = None,
    ) -> Optional[PingResult]:
        """Single-radius helper: the probe with the smallest RTT to ``address``.

        Used by the final multistage-geolocation fallback (Section 3.5,
        step 4): the target is placed near the probe with the minimum
        latency.
        """
        best: Optional[PingResult] = None
        for probe in self.all_probes():
            result = self.ping(probe, address, count, faults=faults)
            if result.min_rtt_ms is None:
                continue
            if best is None or result.min_rtt_ms < (best.min_rtt_ms or float("inf")):
                best = result
        return best


__all__ = [
    "DEFAULT_PING_COUNT",
    "DEFAULT_PROBES_PER_COUNTRY",
    "AtlasProbe",
    "PingResult",
    "AtlasClient",
]
