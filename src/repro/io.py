"""Dataset serialization.

The paper makes its dataset "available upon request"; this module is
that request path: it exports a measured
:class:`~repro.core.dataset.GovernmentHostingDataset` to JSON-lines
(one record per unique URL) plus a JSON header, and loads it back
losslessly, so analyses can run without regenerating the world.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Union

from repro.categories import HostingCategory
from repro.core.dataset import CountryDataset, GovernmentHostingDataset, UrlRecord
from repro.core.geolocation import ValidationMethod, ValidationStats
from repro.core.urlfilter import FilterVia
from repro.faults.report import FaultReport

#: Format marker written into every export header.
FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def record_to_dict(record: UrlRecord) -> dict:
    """One record as a JSON-serializable dict."""
    return {
        "url": record.url,
        "hostname": record.hostname,
        "country": record.country,
        "size_bytes": record.size_bytes,
        "via": record.via.value,
        "depth": record.depth,
        "address": record.address,
        "asn": record.asn,
        "organization": record.organization,
        "registered_country": record.registered_country,
        "gov_operated": record.gov_operated,
        "category": record.category.value,
        "server_country": record.server_country,
        "anycast": record.anycast,
        "validation": record.validation.value,
    }


def record_from_dict(data: dict) -> UrlRecord:
    """Inverse of :func:`record_to_dict`."""
    return UrlRecord(
        url=data["url"],
        hostname=data["hostname"],
        country=data["country"],
        size_bytes=data["size_bytes"],
        via=FilterVia(data["via"]),
        depth=data["depth"],
        address=data["address"],
        asn=data["asn"],
        organization=data["organization"],
        registered_country=data["registered_country"],
        gov_operated=data["gov_operated"],
        category=HostingCategory(data["category"]),
        server_country=data["server_country"],
        anycast=data["anycast"],
        validation=ValidationMethod(data["validation"]),
    )


def save_dataset(dataset: GovernmentHostingDataset, path: PathLike) -> int:
    """Write the dataset as JSON lines; returns the number of records.

    Line 1 is a header object (format version, per-country metadata and
    validation statistics); every following line is one URL record.
    """
    path = pathlib.Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "format": FORMAT_VERSION,
            "validation": dataclasses.asdict(dataset.validation),
            "countries": {
                code: {
                    "landing_count": cd.landing_count,
                    "discarded_url_count": cd.discarded_url_count,
                    "unresolved_hostnames": cd.unresolved_hostnames,
                    "depth_histogram": cd.depth_histogram,
                }
                for code, cd in sorted(dataset.countries.items())
            },
        }
        # The key is only written for faulted runs, so exports from
        # rate-0 runs stay byte-identical to pre-fault-layer exports.
        if dataset.faults.countries:
            header["faults"] = dataset.faults.to_dict()
        handle.write(json.dumps(header) + "\n")
        for record in dataset.iter_records():
            handle.write(json.dumps(record_to_dict(record)) + "\n")
            count += 1
    return count


def load_dataset(path: PathLike) -> GovernmentHostingDataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    path = pathlib.Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{path}: empty dataset file")
        header = json.loads(header_line)
        if header.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported format {header.get('format')!r}"
            )
        records_by_country: dict[str, list[UrlRecord]] = {
            code: [] for code in header["countries"]
        }
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                record = record_from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: corrupt record ({exc})"
                ) from exc
            bucket = records_by_country.get(record.country)
            if bucket is None:
                raise ValueError(
                    f"{path}:{line_number}: record country "
                    f"{record.country!r} is absent from the header's "
                    f"countries map"
                )
            bucket.append(record)

    countries: dict[str, CountryDataset] = {}
    for code, meta in header["countries"].items():
        countries[code] = CountryDataset(
            country=code,
            landing_count=meta["landing_count"],
            records=records_by_country.get(code, []),
            discarded_url_count=meta["discarded_url_count"],
            unresolved_hostnames=list(meta["unresolved_hostnames"]),
            depth_histogram={
                int(depth): count
                for depth, count in meta["depth_histogram"].items()
            },
        )
    validation = ValidationStats(**header["validation"])
    return GovernmentHostingDataset(
        countries=countries,
        validation=validation,
        faults=FaultReport.from_dict(header.get("faults", {})),
    )


def export_csv(dataset: GovernmentHostingDataset, path: PathLike) -> int:
    """Write a flat CSV of all records (for spreadsheet-style analysis)."""
    import csv

    path = pathlib.Path(path)
    fieldnames = list(record_to_dict(_DUMMY))
    count = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in dataset.iter_records():
            writer.writerow(record_to_dict(record))
            count += 1
    return count


#: Template record whose dict form fixes the CSV column set (and order)
#: even for empty datasets.
_DUMMY = UrlRecord(
    url="", hostname="", country="", size_bytes=0, via=FilterVia.TLD, depth=0,
    address=0, asn=0, organization="", registered_country="",
    gov_operated=False, category=HostingCategory.GOVT_SOE,
    server_country=None, anycast=False, validation=ValidationMethod.UNRESOLVED,
)


__all__ = [
    "FORMAT_VERSION",
    "record_to_dict",
    "record_from_dict",
    "save_dataset",
    "load_dataset",
    "export_csv",
]
