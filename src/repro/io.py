"""Dataset serialization.

The paper makes its dataset "available upon request"; this module is
that request path: it exports a measured
:class:`~repro.core.dataset.GovernmentHostingDataset` to JSON-lines
(one record per unique URL) plus a JSON header, and loads it back
losslessly, so analyses can run without regenerating the world.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import pathlib
from typing import Union

from repro.categories import HostingCategory
from repro.core.dataset import CountryDataset, GovernmentHostingDataset, UrlRecord
from repro.core.geolocation import ValidationMethod, ValidationStats
from repro.core.urlfilter import FilterVia
from repro.faults.report import FaultReport

logger = logging.getLogger(__name__)

#: Format marker written into every export header.
FORMAT_VERSION = 1

#: Record count past which :func:`load_dataset` warns that the jsonl
#: path is the wrong tool (one JSON parse + one ``UrlRecord`` per line)
#: and points at the columnar store (``repro-gov convert``).
LARGE_FILE_RECORDS = 1_000_000

PathLike = Union[str, pathlib.Path]


def record_to_dict(record: UrlRecord) -> dict:
    """One record as a JSON-serializable dict."""
    return {
        "url": record.url,
        "hostname": record.hostname,
        "country": record.country,
        "size_bytes": record.size_bytes,
        "via": record.via.value,
        "depth": record.depth,
        "address": record.address,
        "asn": record.asn,
        "organization": record.organization,
        "registered_country": record.registered_country,
        "gov_operated": record.gov_operated,
        "category": record.category.value,
        "server_country": record.server_country,
        "anycast": record.anycast,
        "validation": record.validation.value,
    }


def record_from_dict(data: dict) -> UrlRecord:
    """Inverse of :func:`record_to_dict`."""
    return UrlRecord(
        url=data["url"],
        hostname=data["hostname"],
        country=data["country"],
        size_bytes=data["size_bytes"],
        via=FilterVia(data["via"]),
        depth=data["depth"],
        address=data["address"],
        asn=data["asn"],
        organization=data["organization"],
        registered_country=data["registered_country"],
        gov_operated=data["gov_operated"],
        category=HostingCategory(data["category"]),
        server_country=data["server_country"],
        anycast=data["anycast"],
        validation=ValidationMethod(data["validation"]),
    )


def dataset_header(dataset: GovernmentHostingDataset) -> dict:
    """The jsonl header object (shared with ``repro.store`` conversions,
    which must reproduce :func:`save_dataset` output byte for byte)."""
    header = {
        "format": FORMAT_VERSION,
        "validation": dataclasses.asdict(dataset.validation),
        "countries": {
            code: {
                "landing_count": cd.landing_count,
                "discarded_url_count": cd.discarded_url_count,
                "unresolved_hostnames": cd.unresolved_hostnames,
                "depth_histogram": cd.depth_histogram,
            }
            for code, cd in sorted(dataset.countries.items())
        },
    }
    # The key is only written for faulted runs, so exports from
    # rate-0 runs stay byte-identical to pre-fault-layer exports.
    if dataset.faults.countries:
        header["faults"] = dataset.faults.to_dict()
    return header


def save_dataset(dataset: GovernmentHostingDataset, path: PathLike) -> int:
    """Write the dataset as JSON lines; returns the number of records.

    Line 1 is a header object (format version, per-country metadata and
    validation statistics); every following line is one URL record.
    """
    path = pathlib.Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(dataset_header(dataset)) + "\n")
        for record in dataset.iter_records():
            handle.write(json.dumps(record_to_dict(record)) + "\n")
            count += 1
    return count


def _reject_duplicate_keys(pairs: list) -> dict:
    """``object_pairs_hook`` for the header: a duplicate key (usually a
    country listed twice) silently drops data under plain ``json.loads``
    (last value wins), so fail loudly instead."""
    mapping: dict = {}
    for key, value in pairs:
        if key in mapping:
            raise ValueError(f"duplicate key {key!r} in dataset header")
        mapping[key] = value
    return mapping


def load_dataset(path: PathLike) -> GovernmentHostingDataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Every ``CountryDataset`` is constructed up front from the header
    and records are appended into it as the file streams by, so peak
    memory is one copy of the records (plus the line being parsed) --
    no intermediate per-country buckets are rebuilt at the end.
    """
    path = pathlib.Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{path}: empty dataset file")
        try:
            header = json.loads(
                header_line, object_pairs_hook=_reject_duplicate_keys
            )
        except ValueError as exc:
            raise ValueError(f"{path}:1: corrupt header ({exc})") from exc
        if header.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported format {header.get('format')!r}"
            )
        countries: dict[str, CountryDataset] = {}
        records_by_country: dict[str, list[UrlRecord]] = {}
        for code, meta in header["countries"].items():
            records: list[UrlRecord] = []
            records_by_country[code] = records
            countries[code] = CountryDataset(
                country=code,
                landing_count=meta["landing_count"],
                records=records,
                discarded_url_count=meta["discarded_url_count"],
                unresolved_hostnames=list(meta["unresolved_hostnames"]),
                depth_histogram={
                    int(depth): count
                    for depth, count in meta["depth_histogram"].items()
                },
            )
        count = 0
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                record = record_from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: corrupt record ({exc})"
                ) from exc
            bucket = records_by_country.get(record.country)
            if bucket is None:
                raise ValueError(
                    f"{path}:{line_number}: record country "
                    f"{record.country!r} is absent from the header's "
                    f"countries map"
                )
            bucket.append(record)
            count += 1
            if count == LARGE_FILE_RECORDS + 1:
                logger.warning(
                    "%s exceeds %s records; jsonl loads parse one JSON "
                    "object per record -- convert to a columnar store "
                    "(`repro-gov convert`) for mmap-backed analysis",
                    path, f"{LARGE_FILE_RECORDS:,}",
                )

    validation = ValidationStats(**header["validation"])
    return GovernmentHostingDataset(
        countries=countries,
        validation=validation,
        faults=FaultReport.from_dict(header.get("faults", {})),
    )


def export_csv(dataset: GovernmentHostingDataset, path: PathLike) -> int:
    """Write a flat CSV of all records (for spreadsheet-style analysis).

    Rows are written as plain tuples in :func:`record_to_dict` order --
    building a dict per record only for ``DictWriter`` to flatten it
    straight back out doubles the per-row cost for nothing.
    """
    import csv

    path = pathlib.Path(path)
    count = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(tuple(record_to_dict(_DUMMY)))
        for r in dataset.iter_records():
            writer.writerow((
                r.url, r.hostname, r.country, r.size_bytes, r.via.value,
                r.depth, r.address, r.asn, r.organization,
                r.registered_country, r.gov_operated, r.category.value,
                r.server_country, r.anycast, r.validation.value,
            ))
            count += 1
    return count


#: Template record whose dict form fixes the CSV column set (and order)
#: even for empty datasets.
_DUMMY = UrlRecord(
    url="", hostname="", country="", size_bytes=0, via=FilterVia.TLD, depth=0,
    address=0, asn=0, organization="", registered_country="",
    gov_operated=False, category=HostingCategory.GOVT_SOE,
    server_country=None, anycast=False, validation=ValidationMethod.UNRESOLVED,
)


__all__ = [
    "FORMAT_VERSION",
    "LARGE_FILE_RECORDS",
    "dataset_header",
    "record_to_dict",
    "record_from_dict",
    "save_dataset",
    "load_dataset",
    "export_csv",
]
