"""Tests for category classification and dataset aggregation."""

import pytest

from repro.categories import HostingCategory
from repro.core.classification import CategoryClassifier
from repro.core.dataset import CountryDataset, GovernmentHostingDataset, UrlRecord
from repro.core.geolocation import ValidationMethod, ValidationStats
from repro.core.urlfilter import FilterVia


class _FakeOwnership:
    def __init__(self, gov_asns):
        self._gov = set(gov_asns)

    def is_government(self, asn):
        return asn in self._gov


def test_category_precedence():
    classifier = CategoryClassifier(_FakeOwnership({900}))
    classifier.observe_all([
        (13335, "BR"), (13335, "DE"),   # two continents -> global
        (700, "BR"),                    # only South America
        (900, "BR"),                    # government network
    ])
    assert classifier.categorize(900, "BR", "BR") is HostingCategory.GOVT_SOE
    assert classifier.categorize(13335, "US", "BR") is HostingCategory.P3_GLOBAL
    assert classifier.categorize(700, "BR", "BR") is HostingCategory.P3_LOCAL
    assert classifier.categorize(700, "CO", "BR") is HostingCategory.P3_REGIONAL


def test_government_outranks_global_footprint():
    classifier = CategoryClassifier(_FakeOwnership({900}))
    classifier.observe_all([(900, "BR"), (900, "DE")])
    assert classifier.categorize(900, "NC", "FR") is HostingCategory.GOVT_SOE
    assert classifier.global_provider_asns() == []


def test_footprint_ignores_unknown_countries():
    classifier = CategoryClassifier(_FakeOwnership(set()))
    classifier.observe(13335, "ZZ")
    assert classifier.footprint(13335) == frozenset()


def _record(url="https://x.gov.br/", country="BR", size=100,
            category=HostingCategory.GOVT_SOE, server="BR", reg="BR",
            asn=900, anycast=False, gov=True, hostname="x.gov.br", address=1):
    return UrlRecord(
        url=url, hostname=hostname, country=country, size_bytes=size,
        via=FilterVia.TLD, depth=0, address=address, asn=asn,
        organization="Org", registered_country=reg, gov_operated=gov,
        category=category, server_country=server, anycast=anycast,
        validation=ValidationMethod.ACTIVE_PROBING,
    )


def test_urlrecord_views():
    record = _record(server="US", reg="BR")
    assert record.registration_domestic
    assert record.server_domestic is False
    excluded = _record(server=None)
    assert excluded.excluded
    assert excluded.server_domestic is None


def test_country_dataset_fractions():
    records = [
        _record(url=f"https://x.gov.br/{i}", size=100) for i in range(6)
    ] + [
        _record(url=f"https://y.com.br/{i}", size=300,
                category=HostingCategory.P3_GLOBAL, gov=False, asn=13335)
        for i in range(4)
    ]
    dataset = CountryDataset(
        country="BR", landing_count=2, records=records,
        discarded_url_count=1, unresolved_hostnames=[], depth_histogram={0: 10},
    )
    urls = dataset.category_url_fractions()
    assert urls[HostingCategory.GOVT_SOE] == pytest.approx(0.6)
    bytes_mix = dataset.category_byte_fractions()
    assert bytes_mix[HostingCategory.P3_GLOBAL] == pytest.approx(
        1200 / 1800
    )
    assert dataset.internal_count == 8
    assert dataset.total_bytes == 1800


def test_dataset_summary_counts():
    records_br = [
        _record(url="https://x.gov.br/a"),
        _record(url="https://x.gov.br/b", server=None),
    ]
    records_de = [
        _record(url="https://y.de/a", country="DE", server="DE", reg="DE",
                asn=13335, category=HostingCategory.P3_GLOBAL, gov=False,
                anycast=True, hostname="y.de", address=2),
    ]
    dataset = GovernmentHostingDataset(
        countries={
            "BR": CountryDataset("BR", 1, records_br, 0, [], {}),
            "DE": CountryDataset("DE", 1, records_de, 0, [], {}),
        },
        validation=ValidationStats(),
    )
    summary = dataset.summarize()
    assert summary.total_unique_urls == 3
    assert summary.landing_urls == 2
    assert summary.internal_urls == 1
    assert summary.unique_hostnames == 2
    assert summary.ases == 2
    assert summary.government_ases == 1
    assert summary.anycast_addresses == 1
    assert summary.countries_with_servers == 2
    included = list(dataset.iter_included())
    assert len(included) == 2
    stats = dataset.per_country_stats()
    assert stats["BR"]["landing_urls"] == 1


def test_validation_stats_table4_empty():
    table = ValidationStats().table4()
    assert table["unicast"] == {"AP": 0.0, "MG": 0.0, "UR": 0.0}
