"""Tests for hostname-to-infrastructure mapping (Table 2 records)."""

from repro.core.infrastructure import InfrastructureMapper


def test_map_host_produces_table2_record(world):
    mapper = InfrastructureMapper(world.resolver, world.whois)
    truth = next(iter(world.truth.hosts_of("UY")))
    vantage = world.vpn.vantage_for("UY")
    record = mapper.map_host(truth.hostname, vantage)
    assert record is not None
    assert record.hostname == truth.hostname
    assert record.address == truth.address
    assert record.asn == truth.asn
    assert record.registered_country == truth.registered_country
    assert record.organization


def test_map_host_handles_unknown_hostname(world):
    mapper = InfrastructureMapper(world.resolver, world.whois)
    vantage = world.vpn.vantage_for("BR")
    assert mapper.map_host("does-not-exist.gov.br", vantage) is None


def test_map_hosts_skips_failures(world):
    mapper = InfrastructureMapper(world.resolver, world.whois)
    vantage = world.vpn.vantage_for("BR")
    known = next(iter(world.truth.hosts_of("BR"))).hostname
    result = mapper.map_hosts({known, "ghost.gov.br"}, vantage)
    assert known in result
    assert "ghost.gov.br" not in result


def test_cname_chain_recorded_for_third_party_sites(world):
    from repro.categories import HostingCategory

    mapper = InfrastructureMapper(world.resolver, world.whois)
    chains = []
    for truth in world.truth.hosts.values():
        if truth.category is HostingCategory.P3_GLOBAL:
            vantage = world.vpn.vantage_for(truth.country)
            record = mapper.map_host(truth.hostname, vantage)
            if record is not None:
                chains.append(record.cname_chain)
    assert any(chain for chain in chains), "expected some CNAME chains"
