"""Tests for government-ownership classification of ASes."""

import pytest

from repro.core.asclassify import Evidence, GovernmentASClassifier
from repro.measure.peeringdb import PeeringDb, PeeringDbRecord
from repro.netsim.asn import ASKind, AutonomousSystem, PoP
from repro.netsim.registry import IpRegistry
from repro.netsim.whois import WhoisService

_POP = (PoP("BR", "Brasilia", -15.8, -47.9),)


def _make(asn, org, kind=ASKind.GOVERNMENT, website=None, contact=None):
    return AutonomousSystem(
        asn=asn, name=f"AS-{asn}", organization=org,
        registration_country="BR", kind=kind, pops=_POP,
        website=website, contact_domain=contact,
    )


@pytest.fixture
def setup():
    registry = IpRegistry()
    peeringdb = PeeringDb()
    websearch = {}
    whois = WhoisService(registry)
    classifier = GovernmentASClassifier(peeringdb, whois, websearch)
    return registry, peeringdb, websearch, classifier


def test_peeringdb_text_evidence(setup):
    registry, peeringdb, _, classifier = setup
    registry.register_as(_make(100, "Opaque Org"))
    peeringdb.add(PeeringDbRecord(
        asn=100, name="HHS", org="U.S. Dept. of Health and Human Services",
    ))
    verdict = classifier.classify(100)
    assert verdict.is_government
    assert verdict.evidence is Evidence.PEERINGDB_TEXT


def test_whois_org_evidence(setup):
    registry, _, _, classifier = setup
    registry.register_as(_make(101, "Ministerio de Salud - Brazil"))
    verdict = classifier.classify(101)
    assert verdict.is_government
    assert verdict.evidence is Evidence.WHOIS_ORG


def test_whois_email_evidence(setup):
    registry, _, _, classifier = setup
    registry.register_as(_make(102, "Opaque Org", contact="gov.br"))
    verdict = classifier.classify(102)
    assert verdict.is_government
    assert verdict.evidence is Evidence.WHOIS_EMAIL


def test_websearch_evidence_for_unmarked_soe(setup):
    registry, _, websearch, classifier = setup
    registry.register_as(_make(
        103, "Petro Fiscal S.A.", kind=ASKind.SOE,
        website="https://www.petro-fiscal.com",
    ))
    websearch["https://www.petro-fiscal.com"] = (
        "Petro Fiscal S.A. is a state-owned enterprise of Brazil."
    )
    verdict = classifier.classify(103)
    assert verdict.is_government
    assert verdict.evidence is Evidence.WEB_SEARCH


def test_peeringdb_website_under_gov_domain(setup):
    registry, peeringdb, _, classifier = setup
    registry.register_as(_make(104, "ORG-104"))
    peeringdb.add(PeeringDbRecord(
        asn=104, name="NET-104", org="ORG-104",
        website="https://www.interior.gov.br",
    ))
    verdict = classifier.classify(104)
    assert verdict.is_government
    assert verdict.evidence is Evidence.PEERINGDB_WEBSITE


def test_commercial_providers_not_flagged(setup):
    registry, peeringdb, websearch, classifier = setup
    registry.register_as(_make(
        105, "Rapidhost Hosting Brazil", kind=ASKind.LOCAL_HOSTING,
        website="https://www.rapidhost-br.com",
    ))
    websearch["https://www.rapidhost-br.com"] = (
        "Rapidhost Hosting Brazil is a commercial web host."
    )
    peeringdb.add(PeeringDbRecord(
        asn=105, name="RAPIDHOST-BR", org="Rapidhost Hosting Brazil",
        website="https://www.rapidhost-br.com",
    ))
    assert not classifier.classify(105).is_government


def test_national_keyword_guarded_for_commercial_names(setup):
    registry, _, _, classifier = setup
    registry.register_as(_make(
        106, "National Cloud Colocation Inc", kind=ASKind.LOCAL_HOSTING,
    ))
    assert not classifier.classify(106).is_government


def test_international_does_not_match_nation(setup):
    registry, _, _, classifier = setup
    registry.register_as(_make(
        107, "International Transit Co", kind=ASKind.ISP,
    ))
    assert not classifier.classify(107).is_government


def test_results_are_memoized(setup):
    registry, _, _, classifier = setup
    registry.register_as(_make(108, "Ministry of Finance of Brazil"))
    first = classifier.classify(108)
    assert classifier.classify(108) is first


def test_world_classification_accuracy(world, pipeline):
    """Over the full synthetic world, the cascade recovers ownership with
    high precision/recall against ground-truth AS kinds."""
    classifier = pipeline.ownership
    true_positive = false_positive = false_negative = 0
    for autonomous_system in world.registry.iter_ases():
        is_gov_truth = autonomous_system.kind.is_government_operated
        flagged = classifier.is_government(autonomous_system.asn)
        if flagged and is_gov_truth:
            true_positive += 1
        elif flagged and not is_gov_truth:
            false_positive += 1
        elif not flagged and is_gov_truth:
            false_negative += 1
    assert false_positive == 0
    recall = true_positive / (true_positive + false_negative)
    assert recall > 0.9
