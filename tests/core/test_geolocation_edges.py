"""Edge-case tests for the geolocation cascade."""

import pytest

from repro.core.geolocation import Geolocator, ValidationMethod
from repro.datagen.seeds import derive_rng
from repro.measure.atlas import AtlasClient
from repro.measure.hoiho import HoihoExtractor, PtrTable
from repro.measure.ipinfo import IpInfoDatabase, IpInfoEntry
from repro.measure.ipmap import IpMapCache
from repro.measure.manycast import MAnycastSnapshot
from repro.netsim.anycast import AnycastIndex
from repro.netsim.asn import ASKind, AutonomousSystem, PoP
from repro.netsim.fabric import ServingFabric
from repro.netsim.latency import LatencyModel
from repro.netsim.registry import IpRegistry
from repro.world.cities import all_location_codes


@pytest.fixture
def mini():
    registry = IpRegistry()
    index = AnycastIndex()
    host = AutonomousSystem(
        asn=64999, name="EDGE", organization="Edge Host",
        registration_country="JP", kind=ASKind.LOCAL_HOSTING,
        pops=(PoP("JP", "Tokyo", 35.7, 139.7),),
    )
    address = registry.allocate_address(host, host.pops[0])
    fabric = ServingFabric(registry, index)
    atlas = AtlasClient(
        fabric=fabric, latency=LatencyModel(derive_rng(5, "lat")),
        country_codes=all_location_codes(), rng=derive_rng(5, "atlas"),
    )
    return address, fabric, atlas


def _geolocator(atlas, ipinfo=None, manycast=None, ptr=None, ipmap=None,
                **kwargs):
    return Geolocator(
        ipinfo=ipinfo or IpInfoDatabase(),
        manycast=manycast or MAnycastSnapshot(),
        atlas=atlas,
        hoiho=HoihoExtractor(ptr or PtrTable()),
        ipmap=ipmap or IpMapCache(),
        **kwargs,
    )


def test_missing_ipinfo_falls_back_to_multistage(mini):
    address, _fabric, atlas = mini
    # No IPInfo entry at all: single-radius probing still finds Japan.
    geolocator = _geolocator(atlas)
    verdict = geolocator.locate_unicast(address)
    assert verdict.claimed_country is None
    assert verdict.country == "JP"
    assert verdict.method is ValidationMethod.MULTISTAGE


def test_missing_ipinfo_and_silent_target_unresolved(mini):
    address, fabric, atlas = mini
    fabric.mark_unresponsive(address)
    geolocator = _geolocator(atlas)
    verdict = geolocator.locate_unicast(address)
    assert verdict.excluded
    assert verdict.method is ValidationMethod.UNRESOLVED


def test_manycast_false_positive_treated_as_anycast(mini):
    """A unicast address wrongly flagged anycast follows the anycast path:
    in-country probing still confirms the hosting country."""
    address, _fabric, atlas = mini
    manycast = MAnycastSnapshot([address])
    geolocator = _geolocator(atlas, manycast=manycast)
    verdict = geolocator.locate(address, "JP")
    assert verdict.anycast  # the pipeline believes the snapshot
    assert verdict.country == "JP"
    # From a distant country the same address is (correctly) excluded.
    far = geolocator.locate(address, "BR")
    assert far.excluded


def test_hoiho_wins_over_ipmap(mini):
    address, fabric, atlas = mini
    fabric.mark_unresponsive(address)
    ipinfo = IpInfoDatabase()
    ipinfo.add(IpInfoEntry(address, "JP", "Tokyo", 35.7, 139.7))
    ptr = PtrTable()
    ptr.add(address, "ae1.cr1.tokyo1.jp.bb.edge.net")
    ipmap = IpMapCache()
    ipmap.store(address, "BR")  # stale cache entry; PTR should win
    geolocator = _geolocator(atlas, ipinfo=ipinfo, ptr=ptr, ipmap=ipmap)
    verdict = geolocator.locate_unicast(address)
    assert verdict.country == "JP"


def test_custom_single_radius_threshold(mini):
    address, fabric, atlas = mini
    fabric.mark_unresponsive(address)  # force fallback ordering
    fabric._unresponsive.clear()  # re-enable: we want single-radius to probe
    geolocator = _geolocator(atlas, single_radius_ms=0.0)
    # With a zero radius nothing can be confirmed by single-radius probing.
    verdict = geolocator.locate_unicast(address)
    assert verdict.excluded


def test_stats_isolated_per_instance(mini):
    address, _fabric, atlas = mini
    first = _geolocator(atlas)
    second = _geolocator(atlas)
    first.locate_unicast(address)
    assert first.stats.unicast_total == 1
    assert second.stats.unicast_total == 0
