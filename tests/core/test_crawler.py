"""Tests for the breadth-first crawler."""

import pytest

from repro.core.crawler import Crawler
from repro.websim.browser import Browser


def _crawl(world, code, max_depth=7):
    crawler = Crawler(Browser(world.web), max_depth=max_depth)
    seeds = list(world.truth.directories[code])
    vantage = world.vpn.vantage_for(code)
    return crawler.crawl(seeds, vantage)


def _is_government_url(url):
    return "contractor" not in url and "analytics" not in url


def test_crawl_collects_every_site_url(world):
    result = _crawl(world, "BR")
    expected = set()
    for truth in world.truth.hosts_of("BR"):
        site = world.web.site_of(truth.hostname)
        if site is not None and truth.country == "BR":
            expected.update(u for u in site.unique_urls() if _is_government_url(u))
    gov_urls = {e.url for e in result.archive if _is_government_url(e.url)}
    assert gov_urls <= expected
    # The overwhelming majority of the generated mass is discovered.
    assert len(gov_urls) >= 0.95 * len(expected)


def test_depth_zero_dominates(world):
    result = _crawl(world, "US")
    histogram = result.depth_histogram()
    total = sum(histogram.values())
    assert histogram[0] / total > 0.7
    assert max(histogram) <= 7


def test_depth_limit_respected(world):
    shallow = _crawl(world, "US", max_depth=1)
    assert max(shallow.depth_histogram()) <= 1
    deep = _crawl(world, "US", max_depth=7)
    assert len(deep.archive) >= len(shallow.archive)


def test_crawler_handles_missing_seeds(world):
    crawler = Crawler(Browser(world.web))
    vantage = world.vpn.vantage_for("BR")
    result = crawler.crawl(["https://does-not-exist.gov.br/"], vantage)
    assert result.failed_urls == ["https://does-not-exist.gov.br/"]
    assert len(result.archive) == 0


def test_crawler_rejects_negative_depth(world):
    with pytest.raises(ValueError):
        Crawler(Browser(world.web), max_depth=-1)


def test_geo_restricted_sites_fail_from_foreign_vantage(world):
    restricted = [
        truth.hostname
        for truth in world.truth.hosts.values()
        if (site := world.web.site_of(truth.hostname)) is not None
        and site.geo_restricted
    ]
    if not restricted:
        pytest.skip("no geo-restricted site generated at this seed")
    hostname = restricted[0]
    site = world.web.site_of(hostname)
    foreign = "US" if site.country != "US" else "BR"
    crawler = Crawler(Browser(world.web))
    result = crawler.crawl([site.landing_url], world.vpn.vantage_for(foreign))
    assert site.landing_url in result.failed_urls
    # From the domestic vantage the same site crawls fine (footnote 1).
    domestic = crawler.crawl([site.landing_url], world.vpn.vantage_for(site.country))
    assert site.landing_url not in domestic.failed_urls


def test_page_loads_counted(world):
    result = _crawl(world, "UY")
    assert result.page_loads > 0
    assert result.page_loads <= len(result.archive)


def test_depth_histogram_matches_reference_loop(world):
    """The Counter-based histogram equals the original dict-accumulation
    implementation on a real crawled archive."""
    result = _crawl(world, "BR")
    reference = {}
    for depth in result.depth_of.values():
        reference[depth] = reference.get(depth, 0) + 1
    reference = dict(sorted(reference.items()))
    histogram = result.depth_histogram()
    assert histogram == reference
    # Sorted ascending by depth, and accounts for every URL.
    assert list(histogram) == sorted(histogram)
    assert sum(histogram.values()) == len(result.depth_of)


def _reference_crawl(world, code, max_depth=7):
    """The pre-dedup implementation: enqueue every link, skip repeat
    pops.  Kept as an executable spec for the frontier-dedup rewrite."""
    import collections

    from repro.core.har import HarArchive
    from repro.websim.webserver import GeoBlockedError, PageNotFoundError

    browser = Browser(world.web)
    vantage = world.vpn.vantage_for(code)
    seeds = list(world.truth.directories[code])

    archive = HarArchive(country=vantage.country)
    depth_of, failed, visited = {}, [], set()
    page_loads = 0
    queue = collections.deque((seed, 0) for seed in seeds)
    while queue:
        url, depth = queue.popleft()
        if url in visited:
            continue
        visited.add(url)
        try:
            load = browser.load(url, vantage)
        except (PageNotFoundError, GeoBlockedError):
            failed.append(url)
            continue
        page_loads += 1
        for entry in load.entries:
            if archive.add(entry):
                depth_of[entry.url] = depth
        if depth < max_depth:
            queue.extend((link, depth + 1) for link in load.links)
    return archive, depth_of, failed, page_loads


@pytest.mark.parametrize("code", ["BR", "US"])
def test_frontier_dedup_matches_reference(world, code):
    """Deduplicating at enqueue time must not change any crawl output:
    the processed sequence is the sequence of first queue occurrences
    either way, so depths, failures and page loads are identical."""
    archive, depth_of, failed, page_loads = _reference_crawl(world, code)
    result = _crawl(world, code)
    assert list(result.archive) == list(archive)
    assert result.depth_of == depth_of
    assert result.failed_urls == failed
    assert result.page_loads == page_loads
