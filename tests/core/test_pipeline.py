"""Integration tests for the end-to-end pipeline over the shared world."""

import pytest

from repro.categories import HostingCategory
from repro.core.urlfilter import FilterVia


def test_pipeline_covers_all_countries(dataset, world):
    assert set(dataset.countries) == set(world.country_codes())


def test_dataset_sizes_track_scale(dataset, world):
    from repro.world.countries import COUNTRIES

    scale = world.config.scale
    summary = dataset.summarize()
    expected_internal = sum(c.internal_urls for c in COUNTRIES.values()) * scale
    assert summary.internal_urls == pytest.approx(expected_internal, rel=0.25)
    assert summary.unique_hostnames == pytest.approx(
        sum(c.hostnames for c in COUNTRIES.values()) * scale, rel=0.35
    )


def test_records_match_truth_hosts(dataset, world):
    """Every measured record agrees with ground truth on AS and address."""
    mismatched = 0
    total = 0
    for record in dataset.iter_records():
        truth = world.truth.hosts.get(record.hostname)
        if truth is None:
            continue
        total += 1
        if record.asn != truth.asn or record.address != truth.address:
            mismatched += 1
    assert total > 0
    assert mismatched == 0


def test_measured_categories_match_truth(dataset, world):
    """Category recovery is imperfect only where the cascade legitimately
    lacks evidence; mismatches must be rare."""
    mismatched = total = 0
    for record in dataset.iter_records():
        truth = world.truth.hosts.get(record.hostname)
        if truth is None:
            continue
        total += 1
        if record.category is not truth.category:
            mismatched += 1
    assert mismatched / total < 0.12


def test_filter_vias_present(dataset):
    vias = {record.via for record in dataset.iter_records()}
    assert FilterVia.TLD in vias
    assert FilterVia.DOMAIN in vias
    assert FilterVia.SAN in vias


def test_every_category_observed(dataset):
    categories = {record.category for record in dataset.iter_records()}
    assert categories == set(HostingCategory)


def test_excluded_records_have_no_server_country(dataset):
    for record in dataset.iter_records():
        if record.excluded:
            assert record.server_country is None
        else:
            assert record.server_country is not None


def test_korea_dataset_is_empty(dataset):
    korea = dataset.country("KR")
    assert korea.url_count == 0
    assert korea.landing_count == 0


def test_validation_stats_populated(dataset):
    stats = dataset.validation
    assert stats.unicast_total > 0
    assert stats.anycast_total > 0
    table = stats.table4()
    assert 0.2 < table["unicast"]["AP"] < 0.6
    assert 0.3 < table["unicast"]["MG"] < 0.75
    assert table["unicast"]["UR"] < 0.12
    assert table["anycast"]["MG"] == 0.0


def test_country_subset_run(pipeline):
    subset = pipeline.run(["UY", "PY"])
    assert set(subset.countries) == {"UY", "PY"}


def test_depth_histogram_recorded(dataset):
    brazil = dataset.country("BR")
    assert 0 in brazil.depth_histogram
    assert sum(brazil.depth_histogram.values()) >= brazil.url_count
