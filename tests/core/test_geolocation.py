"""Tests for the four-step geolocation process."""

import pytest

from repro.core.geolocation import Geolocator, ValidationMethod
from repro.datagen.seeds import derive_rng
from repro.measure.atlas import AtlasClient
from repro.measure.hoiho import HoihoExtractor, PtrTable
from repro.measure.ipinfo import IpInfoDatabase, IpInfoEntry
from repro.measure.ipmap import IpMapCache
from repro.measure.manycast import MAnycastSnapshot
from repro.netsim.anycast import AnycastGroup, AnycastIndex
from repro.netsim.asn import ASKind, AutonomousSystem, PoP
from repro.netsim.fabric import ServingFabric
from repro.netsim.latency import LatencyModel
from repro.netsim.registry import IpRegistry
from repro.world.cities import all_location_codes


class _Fixture:
    """A hand-wired mini-Internet with every geolocation corner case."""

    def __init__(self):
        self.registry = IpRegistry()
        self.index = AnycastIndex()
        host_de = AutonomousSystem(
            asn=64500, name="HOST-DE", organization="Host DE",
            registration_country="DE", kind=ASKind.LOCAL_HOSTING,
            pops=(PoP("DE", "Frankfurt", 50.1, 8.7),),
        )
        pop_de = host_de.pops[0]
        self.ipinfo = IpInfoDatabase()
        self.manycast = MAnycastSnapshot()
        self.ptr = PtrTable()
        self.ipmap = IpMapCache()

        def info(address, cc="DE", city="Frankfurt", lat=50.1, lon=8.7):
            self.ipinfo.add(IpInfoEntry(address, cc, city, lat, lon))

        # Case 1: responsive, IPInfo correct -> AP.
        self.ap_ok = self.registry.allocate_address(host_de, pop_de)
        info(self.ap_ok)
        # Case 2: unresponsive, PTR hint agrees with IPInfo -> MG.
        self.mg_hoiho = self.registry.allocate_address(host_de, pop_de)
        info(self.mg_hoiho)
        self.ptr.add(self.mg_hoiho, "ae1.cr1.frankfurt2.de.bb.hostde.net")
        # Case 3: unresponsive, IPmap agrees -> MG.
        self.mg_ipmap = self.registry.allocate_address(host_de, pop_de)
        info(self.mg_ipmap)
        self.ipmap.store(self.mg_ipmap, "DE")
        # Case 4: responsive but IPInfo claims the wrong country; the
        # single-radius probe finds DE -> conflict -> excluded.
        self.conflict = self.registry.allocate_address(host_de, pop_de)
        info(self.conflict, cc="BR", city="Brasilia", lat=-15.8, lon=-47.9)
        # Case 5: unresponsive and invisible everywhere -> unresolved.
        self.unresolved = self.registry.allocate_address(host_de, pop_de)
        info(self.unresolved)
        # Case 6: anycast with a German site.
        self.anycast_domestic = self.registry.allocate_address(host_de, pop_de)
        info(self.anycast_domestic, cc="US", city="Washington", lat=38.9, lon=-77.0)
        self.index.add(AnycastGroup(
            address=self.anycast_domestic, asn=64500,
            pops=(PoP("DE", "Frankfurt", 50.1, 8.7),
                  PoP("US", "Washington", 38.9, -77.0)),
        ))
        self.manycast.flag(self.anycast_domestic)
        # Case 7: anycast without a domestic site (offshore catchment).
        self.anycast_offshore = self.registry.allocate_address(host_de, pop_de)
        info(self.anycast_offshore, cc="US", city="Washington", lat=38.9, lon=-77.0)
        self.index.add(AnycastGroup(
            address=self.anycast_offshore, asn=64500,
            pops=(PoP("US", "Washington", 38.9, -77.0),),
        ))
        self.manycast.flag(self.anycast_offshore)

        self.fabric = ServingFabric(self.registry, self.index)
        self.fabric.mark_unresponsive(self.mg_hoiho)
        self.fabric.mark_unresponsive(self.mg_ipmap)
        self.fabric.mark_unresponsive(self.unresolved)
        atlas = AtlasClient(
            fabric=self.fabric,
            latency=LatencyModel(derive_rng(2, "lat")),
            country_codes=all_location_codes(),
            rng=derive_rng(2, "atlas"),
        )
        self.geolocator = Geolocator(
            ipinfo=self.ipinfo, manycast=self.manycast, atlas=atlas,
            hoiho=HoihoExtractor(self.ptr), ipmap=self.ipmap,
        )


@pytest.fixture(scope="module")
def fx():
    return _Fixture()


def test_active_probing_confirms_correct_claim(fx):
    verdict = fx.geolocator.locate_unicast(fx.ap_ok)
    assert verdict.country == "DE"
    assert verdict.method is ValidationMethod.ACTIVE_PROBING
    assert not verdict.excluded


def test_hoiho_fallback(fx):
    verdict = fx.geolocator.locate_unicast(fx.mg_hoiho)
    assert verdict.country == "DE"
    assert verdict.method is ValidationMethod.MULTISTAGE


def test_ipmap_fallback(fx):
    verdict = fx.geolocator.locate_unicast(fx.mg_ipmap)
    assert verdict.country == "DE"
    assert verdict.method is ValidationMethod.MULTISTAGE


def test_conflicting_multistage_excludes_address(fx):
    verdict = fx.geolocator.locate_unicast(fx.conflict)
    assert verdict.excluded
    assert verdict.conflict
    assert verdict.claimed_country == "BR"


def test_invisible_address_unresolved(fx):
    verdict = fx.geolocator.locate_unicast(fx.unresolved)
    assert verdict.excluded
    assert verdict.method is ValidationMethod.UNRESOLVED


def test_anycast_confirmed_within_country(fx):
    verdict = fx.geolocator.locate(fx.anycast_domestic, "DE")
    assert verdict.anycast
    assert verdict.country == "DE"
    assert verdict.method is ValidationMethod.ACTIVE_PROBING


def test_anycast_without_domestic_site_excluded(fx):
    verdict = fx.geolocator.locate(fx.anycast_offshore, "DE")
    assert verdict.anycast
    assert verdict.excluded


def test_anycast_validated_per_country(fx):
    us_view = fx.geolocator.locate(fx.anycast_offshore, "US")
    assert us_view.country == "US"
    de_view = fx.geolocator.locate(fx.anycast_offshore, "DE")
    assert de_view.excluded


def test_verdicts_memoized(fx):
    assert fx.geolocator.locate_unicast(fx.ap_ok) is fx.geolocator.locate_unicast(fx.ap_ok)


def test_stats_tally(fx):
    stats = fx.geolocator.stats
    # All unicast cases above have been evaluated by earlier tests.
    assert stats.unicast_ap >= 1
    assert stats.unicast_mg >= 2
    assert stats.unicast_conflicts >= 1
    assert stats.anycast_ap >= 1
    assert stats.anycast_unresolved >= 1
    table = stats.table4()
    assert table["unicast"]["AP"] + table["unicast"]["MG"] + table["unicast"]["UR"] == pytest.approx(1.0)


def test_disabling_stages_degrades_resolution(fx):
    blind = Geolocator(
        ipinfo=fx.ipinfo, manycast=fx.manycast,
        atlas=fx.geolocator._atlas,  # reuse the probe mesh
        hoiho=HoihoExtractor(fx.ptr), ipmap=fx.ipmap,
        enable_hoiho=False, enable_ipmap=False, enable_single_radius=False,
    )
    verdict = blind.locate_unicast(fx.mg_hoiho)
    assert verdict.excluded
