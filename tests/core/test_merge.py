"""Unit tests for the cross-country reduction monoids.

The parallel executors rely on ``ValidationStats`` and
``ProviderFootprint`` merging associatively with an identity element,
so shard tallies can be reduced in any grouping without changing the
result.  These tests pin that algebra down in isolation from the
executors themselves.
"""

import dataclasses

import pytest

from repro.core.classification import ProviderFootprint
from repro.core.geolocation import (
    GeoVerdict,
    ValidationMethod,
    ValidationStats,
)
from repro.world.regions import Continent


def _stats(**overrides) -> ValidationStats:
    values = dict(unicast_ap=3, unicast_mg=2, unicast_unresolved=1,
                  unicast_conflicts=1, anycast_ap=4, anycast_unresolved=2)
    values.update(overrides)
    return ValidationStats(**values)


class TestValidationStatsMerge:
    def test_merge_is_componentwise_sum(self):
        merged = _stats().merge(_stats(unicast_ap=10))
        assert merged == ValidationStats(
            unicast_ap=13, unicast_mg=4, unicast_unresolved=2,
            unicast_conflicts=2, anycast_ap=8, anycast_unresolved=4,
        )

    def test_identity(self):
        stats = _stats()
        assert stats.merge(ValidationStats()) == stats
        assert ValidationStats().merge(stats) == stats

    def test_associativity(self):
        a, b, c = _stats(), _stats(unicast_mg=7), _stats(anycast_ap=1)
        assert (a + b) + c == a + (b + c)

    def test_commutativity(self):
        a, b = _stats(), _stats(unicast_unresolved=9)
        assert a + b == b + a

    def test_merge_does_not_mutate_operands(self):
        a, b = _stats(), _stats()
        snapshot = dataclasses.replace(a)
        a.merge(b)
        assert a == snapshot

    def test_add_rejects_other_types(self):
        with pytest.raises(TypeError):
            _stats() + 1

    def test_tally_matches_table4_columns(self):
        stats = ValidationStats()
        stats.tally(GeoVerdict(address=1, country="BR",
                               method=ValidationMethod.ACTIVE_PROBING,
                               anycast=False, claimed_country="BR"))
        stats.tally(GeoVerdict(address=2, country="BR",
                               method=ValidationMethod.MULTISTAGE,
                               anycast=False, claimed_country="BR"))
        stats.tally(GeoVerdict(address=3, country=None,
                               method=ValidationMethod.MULTISTAGE,
                               anycast=False, claimed_country="US",
                               conflict=True))
        stats.tally(GeoVerdict(address=4, country=None,
                               method=ValidationMethod.UNRESOLVED,
                               anycast=False, claimed_country=None))
        stats.tally(GeoVerdict(address=5, country="BR",
                               method=ValidationMethod.ACTIVE_PROBING,
                               anycast=True, claimed_country="US"))
        stats.tally(GeoVerdict(address=6, country=None,
                               method=ValidationMethod.UNRESOLVED,
                               anycast=True, claimed_country="US"))
        assert stats == ValidationStats(
            unicast_ap=1, unicast_mg=1, unicast_unresolved=2,
            unicast_conflicts=1, anycast_ap=1, anycast_unresolved=1,
        )


def _footprint(pairs) -> ProviderFootprint:
    footprint = ProviderFootprint()
    for asn, country in pairs:
        footprint.observe(asn, country)
    return footprint


class TestProviderFootprintMerge:
    def test_merge_unions_continents(self):
        a = _footprint([(64500, "BR"), (64500, "AR")])
        b = _footprint([(64500, "JP"), (64501, "US")])
        merged = a.merge(b)
        assert merged.continents(64500) == frozenset(
            {Continent.SOUTH_AMERICA, Continent.ASIA}
        )
        assert merged.continents(64501) == frozenset({Continent.NORTH_AMERICA})

    def test_identity(self):
        a = _footprint([(64500, "BR"), (64501, "DE")])
        empty = ProviderFootprint()
        assert (a + empty).continents_by_asn == a.continents_by_asn
        assert (empty + a).continents_by_asn == a.continents_by_asn

    def test_associativity_and_commutativity(self):
        a = _footprint([(64500, "BR")])
        b = _footprint([(64500, "JP"), (64501, "US")])
        c = _footprint([(64502, "FR")])
        assert ((a + b) + c).continents_by_asn == (a + (b + c)).continents_by_asn
        assert (a + b).continents_by_asn == (b + a).continents_by_asn

    def test_merge_does_not_mutate_operands(self):
        a = _footprint([(64500, "BR")])
        b = _footprint([(64500, "JP")])
        a.merge(b)
        assert a.continents(64500) == frozenset({Continent.SOUTH_AMERICA})
        assert b.continents(64500) == frozenset({Continent.ASIA})

    def test_unknown_country_ignored(self):
        assert len(_footprint([(64500, "ZZ")])) == 0
