"""Tests for HAR archives and directory compilation."""

from repro.core.gathering import GovernmentDirectory, compile_directory
from repro.har import HarArchive, HarEntry


def _entry(url, host="www.gov.br", size=100):
    return HarEntry(url=url, hostname=host, size_bytes=size)


def test_archive_deduplicates_by_url():
    archive = HarArchive(country="BR")
    assert archive.add(_entry("https://a/1"))
    assert not archive.add(_entry("https://a/1", size=999))
    assert len(archive) == 1
    assert archive.get("https://a/1").size_bytes == 100


def test_archive_extend_counts_new():
    archive = HarArchive(country="BR")
    added = archive.extend([_entry("https://a/1"), _entry("https://a/1"),
                            _entry("https://a/2")])
    assert added == 2


def test_archive_aggregations():
    archive = HarArchive(country="BR")
    archive.add(_entry("https://a/1", host="x.gov.br", size=10))
    archive.add(_entry("https://a/2", host="y.gov.br", size=20))
    assert archive.hostnames() == {"x.gov.br", "y.gov.br"}
    assert archive.total_bytes() == 30
    assert "https://a/1" in archive
    assert {e.url for e in archive} == {"https://a/1", "https://a/2"}


def test_directory_hostnames_derived_from_urls():
    directory = GovernmentDirectory(
        country="BR",
        landing_urls=("https://www.gov.br/", "https://www.gov.br/abin",
                      "https://tax.gov.br/"),
    )
    assert directory.hostnames == {"www.gov.br", "tax.gov.br"}
    assert directory.landing_count == 3
    assert len(directory) == 3


def test_compile_directory_from_world(world):
    directory = compile_directory(world, "br")
    assert directory.country == "BR"
    assert directory.landing_count == len(world.truth.directories["BR"])
    assert directory.landing_count > 0


def test_compile_directory_for_korea_is_empty(world):
    assert compile_directory(world, "KR").landing_count == 0
