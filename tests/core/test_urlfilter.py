"""Tests for the Table 1 URL-filter cascade."""

import pytest

from repro.core.gathering import GovernmentDirectory
from repro.core.urlfilter import (
    FilterVia,
    GovernmentUrlFilter,
    default_san_verifier,
    matches_gov_tld,
)
from repro.har import HarArchive, HarEntry
from repro.netsim.tls import Certificate, CertificateStore


@pytest.mark.parametrize("hostname", [
    "www.nsf.gov", "www.gov.br", "impots.gouv.fr", "sat.gob.mx",
    "data.go.id", "stats.govt.nz", "www.gub.uy", "portal.admin.ch",
    "army.mil", "site.government.bg", "tax.gov.uk",
])
def test_gov_tld_matches(hostname):
    assert matches_gov_tld(hostname)


@pytest.mark.parametrize("hostname", [
    "www.example.com", "bund-gesundheit.de", "golf.com", "cdn.provider.net",
    "governance-institute.org", "fgov-mirror.example",
])
def test_gov_tld_rejects(hostname):
    assert not matches_gov_tld(hostname)


def test_san_verifier_rejects_provider_infrastructure():
    assert default_san_verifier("energia-argentina.com.ar")
    assert not default_san_verifier("sni12345.cloudflaressl.com")
    assert not default_san_verifier("edge7.cdn.example.net")


@pytest.fixture
def filter_setup():
    directory = GovernmentDirectory(
        country="DE",
        landing_urls=("https://gesundheit.de/", "https://www.finanzen.de/"),
    )
    certificates = CertificateStore()
    certificates.install("gesundheit.de", Certificate(
        subject="gesundheit.de",
        sans=("gesundheit.de", "energie-staat.com", "cdn9.cloudssl.net"),
    ))
    archive = HarArchive(country="DE")
    entries = [
        HarEntry("https://gesundheit.de/", "gesundheit.de", 10),           # domain
        HarEntry("https://gesundheit.de/a.js", "gesundheit.de", 10),       # domain
        HarEntry("https://www.zoll.gov.de/x", "www.zoll.gov.de", 10),      # tld
        HarEntry("https://energie-staat.com/", "energie-staat.com", 10),   # san
        HarEntry("https://cdn9.cloudssl.net/w.js", "cdn9.cloudssl.net", 10),  # rejected SAN
        HarEntry("https://tracker.example.com/p", "tracker.example.com", 10),  # discard
    ]
    for entry in entries:
        archive.add(entry)
    return GovernmentUrlFilter(directory, certificates), archive


def test_cascade_assigns_expected_vias(filter_setup):
    url_filter, archive = filter_setup
    outcome = url_filter.run(archive)
    assert outcome.accepted["https://gesundheit.de/"] is FilterVia.DOMAIN
    assert outcome.accepted["https://www.zoll.gov.de/x"] is FilterVia.TLD
    assert outcome.accepted["https://energie-staat.com/"] is FilterVia.SAN
    assert "https://cdn9.cloudssl.net/w.js" in outcome.discarded
    assert "https://tracker.example.com/p" in outcome.discarded


def test_tld_takes_precedence_over_domain():
    directory = GovernmentDirectory(
        country="BR", landing_urls=("https://www.gov.br/",)
    )
    archive = HarArchive(country="BR")
    archive.add(HarEntry("https://www.gov.br/", "www.gov.br", 10))
    outcome = GovernmentUrlFilter(directory, CertificateStore()).run(archive)
    assert outcome.accepted["https://www.gov.br/"] is FilterVia.TLD


def test_counts_and_fractions(filter_setup):
    url_filter, archive = filter_setup
    outcome = url_filter.run(archive)
    counts = outcome.counts_by_via()
    assert counts[FilterVia.DOMAIN] == 2
    assert counts[FilterVia.TLD] == 1
    assert counts[FilterVia.SAN] == 1
    fractions = outcome.fractions_by_via()
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_empty_archive():
    directory = GovernmentDirectory(country="BR", landing_urls=())
    outcome = GovernmentUrlFilter(directory, CertificateStore()).run(
        HarArchive(country="BR")
    )
    assert not outcome.accepted
    assert not outcome.discarded
    assert outcome.fractions_by_via() == {via: 0.0 for via in FilterVia}


def test_custom_verifier_overrides_default():
    directory = GovernmentDirectory(
        country="DE", landing_urls=("https://gesundheit.de/",)
    )
    certificates = CertificateStore()
    certificates.install("gesundheit.de", Certificate(
        subject="gesundheit.de", sans=("gesundheit.de", "energie-staat.com"),
    ))
    archive = HarArchive(country="DE")
    archive.add(HarEntry("https://energie-staat.com/", "energie-staat.com", 1))
    strict = GovernmentUrlFilter(
        directory, certificates, san_verifier=lambda _h: False
    )
    assert archive.get("https://energie-staat.com/")
    outcome = strict.run(archive)
    assert "https://energie-staat.com/" in outcome.discarded
