"""Shared fixtures: session-scoped synthetic worlds and pipeline runs.

Generating a world and running the pipeline dominates test cost, so the
suite shares one small full-sample world (all 61 countries at a small
scale) and one tiny three-country world for focused tests.
"""

from __future__ import annotations

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig


@pytest.fixture(scope="session")
def small_config() -> WorldConfig:
    """Config of the shared full-sample world."""
    return WorldConfig(seed=42, scale=0.04)


@pytest.fixture(scope="session")
def world(small_config) -> SyntheticWorld:
    """A full 61-country world at small scale."""
    return SyntheticWorld.generate(small_config)


@pytest.fixture(scope="session")
def pipeline(world) -> Pipeline:
    """A pipeline bound to the shared world."""
    return Pipeline(world)


@pytest.fixture(scope="session")
def dataset(pipeline):
    """The measured dataset over the shared world."""
    return pipeline.run()


@pytest.fixture(scope="session")
def tiny_world() -> SyntheticWorld:
    """A three-country world for focused component tests."""
    return SyntheticWorld.generate(
        WorldConfig(seed=7, scale=0.05, countries=("BR", "US", "FR"))
    )


@pytest.fixture(scope="session")
def tiny_dataset(tiny_world):
    """Measured dataset of the tiny world."""
    return Pipeline(tiny_world).run(["BR", "US", "FR"])
