"""Shared sweep fixtures: one small four-axis matrix, swept once.

A sweep at this scale runs in a couple of seconds but exercises every
axis: a vantage shift (re-keys two countries), a DNS-stress fault
profile (re-keys all), a provider outage (re-keys nothing, shares the
baseline dataset) and an evolution step (re-keys the mutated subset).
"""

from __future__ import annotations

import pytest

from repro import WorldConfig
from repro.scenarios import ScenarioMatrix, SweepRunner

CODES = ("US", "DE", "IN", "EE", "UY", "SG")


def make_base(**kwargs) -> WorldConfig:
    kwargs.setdefault("seed", 42)
    kwargs.setdefault("scale", 0.01)
    kwargs.setdefault("countries", CODES)
    return WorldConfig(**kwargs)


def make_matrix(base: WorldConfig) -> ScenarioMatrix:
    matrix = ScenarioMatrix(base)
    matrix.add_vantage("alt-vantage", countries=("US", "DE"), rank=1)
    matrix.add_faults("dns-stress", rate=0.3, profile="dns")
    matrix.add_outage("cf-down", provider="cloudflare")
    matrix.add_evolution("evolved", steps=1)
    return matrix


@pytest.fixture(scope="session")
def sweep_base() -> WorldConfig:
    return make_base()


@pytest.fixture(scope="session")
def sweep(sweep_base):
    """The four-axis matrix swept serially, no cache."""
    return SweepRunner(make_matrix(sweep_base)).run()
