"""ScenarioMatrix: axis validation, compilation and the JSON form."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import WorldConfig
from repro.scenarios import (
    BASELINE_NAME,
    MatrixError,
    Scenario,
    ScenarioMatrix,
)
from tests.scenarios.conftest import make_base


def test_compile_is_baseline_first():
    matrix = ScenarioMatrix(make_base())
    matrix.add_faults("stress", rate=0.2)
    matrix.add_outage("cf", provider="cloudflare")
    scenarios = matrix.compile()
    assert [s.name for s in scenarios] == [BASELINE_NAME, "stress", "cf"]
    assert scenarios[0].kind == "baseline"
    assert scenarios[0].config is matrix.base
    assert len(matrix) == 3


def test_duplicate_and_reserved_names_rejected():
    matrix = ScenarioMatrix(make_base())
    matrix.add_faults("stress", rate=0.2)
    with pytest.raises(MatrixError, match="duplicate"):
        matrix.add_outage("stress", provider="cloudflare")
    with pytest.raises(MatrixError, match="duplicate"):
        matrix.add_faults(BASELINE_NAME, rate=0.1)


def test_unknown_kind_rejected():
    with pytest.raises(MatrixError, match="unknown scenario kind"):
        Scenario(name="x", kind="chaos", config=make_base())


def test_vantage_all_moves_only_countries_with_alternates():
    matrix = ScenarioMatrix(make_base())
    scenario = matrix.add_vantage("alts", countries="all", rank=1)
    moved = [
        override.country
        for override in scenario.config.country_overrides
        if override.vantage_rank == 1
    ]
    # SG's provider runs a single exit; it stays on the primary and
    # keeps deduplicating against the baseline.
    assert moved
    assert "SG" not in moved
    assert scenario.kind == "vantage"


def test_vantage_explicit_list_validated():
    matrix = ScenarioMatrix(make_base())
    with pytest.raises(MatrixError, match="outside the base"):
        matrix.add_vantage("bad", countries=("BR",), rank=1)
    with pytest.raises(KeyError, match="exhausted"):
        matrix.add_vantage("deep", countries=("US",), rank=7)
    with pytest.raises(MatrixError, match="rank >= 1"):
        matrix.add_vantage("zero", countries=("US",), rank=0)


def test_faults_axis_validation():
    matrix = ScenarioMatrix(make_base())
    with pytest.raises(MatrixError, match="unknown fault profile"):
        matrix.add_faults("x", rate=0.2, profile="gremlins")
    with pytest.raises(MatrixError, match="rate in"):
        matrix.add_faults("x", rate=0.0)
    scenario = matrix.add_faults("dns", rate=0.3, profile="dns")
    assert scenario.config.fault_rate == 0.3
    assert scenario.config.fault_profile == "dns"


def test_outage_shares_the_baseline_config_object():
    matrix = ScenarioMatrix(make_base())
    scenario = matrix.add_outage("cf", provider="cloudflare")
    assert scenario.config is matrix.base
    assert scenario.outage_asns == (13335,)
    assert scenario.outage_names == ("Cloudflare",)


def test_outage_validation():
    matrix = ScenarioMatrix(make_base())
    with pytest.raises(MatrixError, match="exactly one"):
        matrix.add_outage("x")
    with pytest.raises(MatrixError, match="exactly one"):
        matrix.add_outage("x", provider="cloudflare", asn=13335)
    with pytest.raises(MatrixError, match="unknown provider"):
        matrix.add_outage("x", provider="clodflare")
    scenario = matrix.add_outage("raw", asn=16509)
    assert scenario.outage_names == ("AS16509",)


def test_evolution_axis_changes_the_config():
    matrix = ScenarioMatrix(make_base())
    scenario = matrix.add_evolution("next", steps=1)
    assert scenario.config != matrix.base
    assert scenario.config.country_codes() == matrix.base.country_codes()
    with pytest.raises(MatrixError, match="steps >= 1"):
        matrix.add_evolution("x", steps=0)


def test_from_json_round_trip():
    document = json.dumps({
        "base": {"scale": 0.01, "countries": ["US", "DE", "SG"]},
        "scenarios": [
            {"name": "alts", "kind": "vantage",
             "countries": ["US", "DE"], "rank": 1},
            {"name": "dns", "kind": "faults", "rate": 0.2,
             "profile": "dns"},
            {"name": "cf", "kind": "outage", "provider": "cloudflare"},
            {"name": "next", "kind": "evolution", "steps": 2},
        ],
    })
    matrix = ScenarioMatrix.from_json(document, base=WorldConfig(seed=7))
    scenarios = matrix.compile()
    assert [s.name for s in scenarios] == \
        [BASELINE_NAME, "alts", "dns", "cf", "next"]
    assert matrix.base.seed == 7
    assert matrix.base.scale == 0.01


def test_from_json_error_mapping():
    with pytest.raises(MatrixError, match="not valid JSON"):
        ScenarioMatrix.from_json("{nope")
    with pytest.raises(MatrixError, match="unknown kind"):
        ScenarioMatrix.from_dict(
            {"scenarios": [{"name": "x", "kind": "chaos"}]}
        )
    with pytest.raises(MatrixError, match="missing field"):
        ScenarioMatrix.from_dict(
            {"scenarios": [{"name": "x", "kind": "faults"}]}
        )
    # A vantage rank beyond the country's exits surfaces the catalog's
    # descriptive message, not a bare KeyError repr.
    with pytest.raises(MatrixError, match="exhausted"):
        ScenarioMatrix.from_dict({"scenarios": [
            {"name": "x", "kind": "vantage", "countries": ["US"],
             "rank": 7},
        ]}, base=make_base())
    with pytest.raises(MatrixError, match="bad matrix base"):
        ScenarioMatrix.from_dict({"base": {"no_such_field": 1}})


def test_vantage_rank_participates_in_config_equality():
    base = make_base()
    matrix = ScenarioMatrix(base)
    moved = matrix.add_vantage("alts", countries=("US",), rank=1)
    assert moved.config != base
    override = next(
        o for o in moved.config.country_overrides if o.country == "US"
    )
    assert override.vantage_rank == 1
    assert not override.is_default()
    back = dataclasses.replace(override, vantage_rank=0)
    assert back.is_default()
