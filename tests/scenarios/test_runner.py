"""SweepRunner: dedup accounting, determinism, executor identity.

The sweep's core promise is twofold: every unique ``(global, country,
slice)`` key is scanned exactly once per sweep (verified by the
runner's own integrity checks *and* re-asserted here from the outside),
and the swept datasets are byte-identical to what standalone
``Pipeline.run`` calls would have produced — across executors and
across cold/warm cache states.
"""

from __future__ import annotations

import pytest

from repro import Pipeline, SyntheticWorld
from repro.cache import ScanCache
from repro.exec import make_executor
from repro.io import save_dataset
from repro.reporting.scenarios import render_sweep_report
from repro.scenarios import Scenario, SweepRunner, compare_sweep
from tests.scenarios.conftest import CODES, make_base, make_matrix


def _dataset_bytes(dataset, tmp_path, name: str) -> bytes:
    path = tmp_path / f"{name}.jsonl"
    save_dataset(dataset, path)
    return path.read_bytes()


def _strip_timing(report: str) -> str:
    return "\n".join(
        line for line in report.splitlines()
        if not line.startswith("scan wave:")
    )


def test_accounting_adds_up(sweep):
    accounting = sweep.accounting
    assert accounting.scenarios == 5
    assert accounting.countries == len(CODES)
    assert accounting.total_tasks == 5 * len(CODES)
    # The outage scenario shares every key with the baseline; vantage
    # shares the untouched countries; so unique < total.
    assert accounting.unique_keys < accounting.total_tasks
    assert accounting.cache_hits == 0
    assert accounting.executed == accounting.unique_keys
    assert accounting.dedup_factor > 1.0
    # outage shares the baseline config entirely -> 4 configs, not 5.
    assert accounting.distinct_configs == 4
    summary = accounting.summary()
    assert f"-> {accounting.unique_keys} unique scans" in summary
    assert f"{accounting.executed} executed" in summary


def test_results_are_baseline_first(sweep):
    names = [result.name for result in sweep]
    assert names == \
        ["baseline", "alt-vantage", "dns-stress", "cf-down", "evolved"]
    assert sweep.baseline.scenario.kind == "baseline"
    assert sweep.by_name("evolved").scenario.kind == "evolution"
    with pytest.raises(KeyError):
        sweep.by_name("nope")


def test_outage_scenario_shares_the_baseline_dataset(sweep):
    outage = sweep.by_name("cf-down")
    assert outage.dataset is sweep.baseline.dataset
    assert outage.changed_countries == ()
    assert outage.shares_baseline_dataset
    assert outage.run_fp == sweep.baseline.run_fp


def test_changed_countries_track_rekeyed_slices(sweep):
    assert sweep.by_name("alt-vantage").changed_countries == ("DE", "US")
    # A fault profile re-keys every country (the plan is global).
    assert sweep.by_name("dns-stress").changed_countries == \
        tuple(sorted(CODES))
    evolved = sweep.by_name("evolved").changed_countries
    assert evolved and set(evolved) < set(CODES)


def test_swept_datasets_match_standalone_runs(sweep, tmp_path):
    """Gate (c): every scenario == a standalone Pipeline.run, per byte."""
    seen_fps = set()
    for result in sweep:
        if result.run_fp in seen_fps:
            continue  # shared dataset object, already proven
        seen_fps.add(result.run_fp)
        standalone = Pipeline(
            SyntheticWorld.generate(result.scenario.config)
        ).run()
        assert _dataset_bytes(result.dataset, tmp_path,
                              f"swept-{result.name}") == \
            _dataset_bytes(standalone, tmp_path,
                           f"standalone-{result.name}"), \
            f"scenario {result.name} diverged from a standalone run"


@pytest.mark.parametrize("executor_name", ["threads", "processes"])
def test_executor_identity(sweep, executor_name, tmp_path):
    """Same matrix, parallel wave -> byte-identical datasets + report."""
    executor = make_executor(executor_name, workers=2)
    try:
        parallel = SweepRunner(
            make_matrix(make_base()), executor=executor
        ).run()
    finally:
        executor.close()
    assert parallel.accounting.unique_keys == sweep.accounting.unique_keys
    assert parallel.accounting.executed == sweep.accounting.executed
    for serial_result, parallel_result in zip(sweep, parallel):
        assert _dataset_bytes(serial_result.dataset, tmp_path,
                              f"serial-{serial_result.name}") == \
            _dataset_bytes(parallel_result.dataset, tmp_path,
                           f"{executor_name}-{parallel_result.name}")
    assert _strip_timing(render_sweep_report(parallel)) == \
        _strip_timing(render_sweep_report(sweep))


def test_cold_then_warm_cache_is_deterministic(sweep, tmp_path):
    cache = ScanCache(tmp_path / "cache")
    cold = SweepRunner(make_matrix(make_base()), cache=cache).run()
    assert cold.accounting.cache_hits == 0
    assert cold.accounting.executed == cold.accounting.unique_keys

    warm = SweepRunner(make_matrix(make_base()), cache=cache).run()
    assert warm.accounting.cache_hits == warm.accounting.unique_keys
    assert warm.accounting.executed == 0

    for uncached_result, cold_result, warm_result in zip(sweep, cold, warm):
        baseline_bytes = _dataset_bytes(
            uncached_result.dataset, tmp_path,
            f"uncached-{uncached_result.name}"
        )
        assert baseline_bytes == _dataset_bytes(
            cold_result.dataset, tmp_path, f"cold-{cold_result.name}")
        assert baseline_bytes == _dataset_bytes(
            warm_result.dataset, tmp_path, f"warm-{warm_result.name}")
    assert compare_sweep(warm) == compare_sweep(sweep)


def test_sweep_rejects_mismatched_country_selections():
    base = make_base()
    other = make_base(countries=("US", "DE"))
    scenarios = (
        Scenario(name="baseline", kind="baseline", config=base),
        Scenario(name="narrow", kind="faults", config=other),
    )
    with pytest.raises(ValueError, match="different\\s+countries"):
        SweepRunner(scenarios)


def test_sweep_rejects_duplicate_names_and_empty_matrices():
    base = make_base()
    scenario = Scenario(name="twin", kind="baseline", config=base)
    with pytest.raises(ValueError, match="duplicate"):
        SweepRunner((scenario, scenario))
    with pytest.raises(ValueError, match="at least one"):
        SweepRunner(())
