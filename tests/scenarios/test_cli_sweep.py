"""CLI surface: ``repro-gov sweep`` and ``repro-gov cache stats/prune``."""

from __future__ import annotations

import json

import pytest

from repro.cli import _parse_duration, _parse_size, main

SWEEP_ARGS = [
    "sweep", "--seed", "42", "--scale", "0.01",
    "--countries", "US", "DE", "EE", "UY",
]


def test_sweep_demo_prints_accounting_and_report(tmp_path, capsys):
    json_out = tmp_path / "sweep.json"
    code = main(SWEEP_ARGS + [
        "--demo", "--cache-dir", str(tmp_path / "cache"),
        "--json", str(json_out),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "SCENARIO SWEEP REPORT" in out
    assert "unique scans" in out
    assert "Divergence vs baseline" in out
    payload = json.loads(json_out.read_text())
    accounting = payload["accounting"]
    assert accounting["scenarios"] == 5
    assert accounting["cache_hits"] + accounting["executed"] == \
        accounting["unique_keys"]
    assert len(payload["divergences"]) == 4


def test_sweep_matrix_file_and_out_dir(tmp_path, capsys):
    matrix_path = tmp_path / "matrix.json"
    matrix_path.write_text(json.dumps({"scenarios": [
        {"name": "cf-down", "kind": "outage", "provider": "cloudflare"},
    ]}))
    out_dir = tmp_path / "out"
    code = main(SWEEP_ARGS + [
        "--matrix", str(matrix_path), "--out-dir", str(out_dir),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "2 scenarios x 4 countries" in out
    # The outage shares every scan with the baseline.
    assert "-> 4 unique scans" in out
    baseline = (out_dir / "baseline.jsonl").read_bytes()
    assert baseline == (out_dir / "cf-down.jsonl").read_bytes()


def test_sweep_rejects_bad_matrices(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"scenarios": [
        {"name": "x", "kind": "outage", "provider": "nope"},
    ]}))
    assert main(SWEEP_ARGS + ["--matrix", str(bad)]) == 2
    assert "unknown provider" in capsys.readouterr().err
    assert main(SWEEP_ARGS + ["--matrix", str(tmp_path / "none.json")]) == 1
    assert "error" in capsys.readouterr().err


def test_sweep_requires_a_matrix_source():
    with pytest.raises(SystemExit):
        main(["sweep"])


def test_cache_stats_and_prune_flow(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    assert main(SWEEP_ARGS + ["--demo", "--cache-dir",
                              str(cache_dir)]) == 0
    capsys.readouterr()

    assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "Scan cache" in out
    assert "entries per country" in out

    assert main(["cache", "prune", "--cache-dir", str(cache_dir),
                 "--max-bytes", "0", "--dry-run"]) == 0
    assert "would remove" in capsys.readouterr().out

    assert main(["cache", "prune", "--cache-dir", str(cache_dir),
                 "--older-than", "0s"]) == 0
    assert "removed" in capsys.readouterr().out

    assert main(["cache", "stats", "--cache-dir", str(cache_dir),
                 "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] == 0


def test_cache_prune_argument_errors(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["cache", "prune", "--cache-dir", cache_dir]) == 2
    assert "--max-bytes and/or --older-than" in capsys.readouterr().err
    assert main(["cache", "prune", "--cache-dir", cache_dir,
                 "--max-bytes", "10Q"]) == 2
    assert "invalid size" in capsys.readouterr().err
    assert main(["cache", "prune", "--cache-dir", cache_dir,
                 "--older-than", "soon"]) == 2
    assert "invalid duration" in capsys.readouterr().err


def test_suffix_parsing():
    assert _parse_duration("90") == 90.0
    assert _parse_duration("15m") == 900.0
    assert _parse_duration("6H") == 21600.0
    assert _parse_duration("7d") == 7 * 86400.0
    assert _parse_size("1048576") == 1048576
    assert _parse_size("512K") == 512 * 1024
    assert _parse_size("500m") == 500 * 1024 ** 2
    assert _parse_size("2G") == 2 * 1024 ** 3
    with pytest.raises(ValueError):
        _parse_duration("-5s")
    with pytest.raises(ValueError):
        _parse_size("lots")
