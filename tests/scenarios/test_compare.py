"""Divergence metrics: flips, category deltas, HHI, outage radius."""

from __future__ import annotations

import pytest

from repro.categories import HostingCategory
from repro.scenarios import compare_scenario, compare_sweep
from repro.scenarios.compare import OUTAGE_THRESHOLD


@pytest.fixture(scope="module")
def divergences(sweep):
    return compare_sweep(sweep)


def test_baseline_is_not_compared_to_itself(sweep, divergences):
    assert len(divergences) == len(sweep) - 1
    assert [d.name for d in divergences] == \
        [result.name for result in sweep.results[1:]]


def test_self_comparison_is_all_zero(sweep):
    divergence = compare_scenario(sweep.baseline, sweep.baseline)
    assert divergence.identical_dataset
    assert divergence.verdict_flips == 0
    assert divergence.third_party_delta == 0.0
    assert divergence.hhi_mean_delta == 0.0
    assert all(delta == 0.0 for _, delta in divergence.category_deltas)
    assert divergence.outage is None


def test_outage_divergence_reports_blast_radius_only(sweep, divergences):
    outage = next(d for d in divergences if d.kind == "outage")
    # The measured world is the baseline's: zero measurement divergence.
    assert outage.identical_dataset
    assert outage.verdict_flips == 0
    assert outage.hhi_mean_delta == 0.0
    # ...but the what-if analysis still ran over the shared dataset.
    radius = outage.outage
    assert radius is not None
    assert radius.asns == (13335,)
    assert radius.names == ("Cloudflare",)
    assert radius.affected_count == len(radius.affected)
    shares = [share for _, share in radius.affected]
    assert shares == sorted(shares, reverse=True)
    assert all(share > OUTAGE_THRESHOLD for share in shares)
    if radius.affected:
        assert radius.worst == radius.affected[0]
        assert 0 < radius.mean_share_lost <= 1


def test_flips_confined_to_changed_countries(sweep, divergences):
    for divergence in divergences:
        flipped = {code for code, _ in divergence.flips_by_country}
        assert flipped <= set(divergence.changed_countries)
        assert divergence.verdict_flips == \
            sum(count for _, count in divergence.flips_by_country)


def test_category_deltas_are_consistent(divergences):
    labels = tuple(category.value for category in HostingCategory)
    for divergence in divergences:
        assert tuple(label for label, _ in divergence.category_deltas) == \
            labels
        # Shares sum to 1 on both sides, so the deltas sum to ~0 and
        # the third-party aggregate mirrors the Govt&SOE movement.
        total = sum(delta for _, delta in divergence.category_deltas)
        assert total == pytest.approx(0.0, abs=1e-9)
        govt = dict(divergence.category_deltas)[
            HostingCategory.GOVT_SOE.value
        ]
        assert divergence.third_party_delta == pytest.approx(-govt)


def test_to_dict_is_json_ready(divergences):
    import json

    for divergence in divergences:
        payload = divergence.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["name"] == divergence.name
