"""EvolutionModel: purity, slice stability, cumulative composition."""

from __future__ import annotations

import pickle

import pytest

from repro import WorldConfig
from repro.datagen.config import CountryOverride
from repro.evolve import EvolutionModel, EvolutionRates, Mutation
from repro.evolve.mutations import MUTATION_KINDS

CODES = ("BR", "US", "FR", "DE", "JP", "IN", "ZA", "MX")


def _config(**kwargs) -> WorldConfig:
    kwargs.setdefault("seed", 42)
    kwargs.setdefault("scale", 0.05)
    kwargs.setdefault("countries", CODES)
    return WorldConfig(**kwargs)


def test_evolve_is_pure():
    model = EvolutionModel(seed=11)
    config = _config()
    assert model.evolve(config, 1) == model.evolve(config, 1)
    assert pickle.dumps(model.evolve(config, 1)) == \
        pickle.dumps(model.evolve(config, 1))


def test_different_steps_differ():
    model = EvolutionModel(seed=11)
    config = _config(countries=None)  # full sample: changes all but sure
    one = model.evolve(config, 1)
    two = model.evolve(config, 2)
    assert one.changed_countries != two.changed_countries


def test_untouched_countries_keep_identical_override_objects():
    """The cache-hit guarantee at the config layer: a country the step
    does not touch keeps the very same override object (or none)."""
    override = CountryOverride(country="BR", extra_soes=2)
    config = _config(country_overrides=(override,))
    model = EvolutionModel(seed=11)
    step = model.evolve(config, 1)
    for code in CODES:
        if code in step.changed_countries:
            continue
        before = config.override_for(code)
        after = step.config.override_for(code)
        assert after is before  # not merely equal: the same object


def test_slice_fingerprints_stable_for_unchanged_countries():
    from repro.cache import country_slice_fingerprint

    config = _config()
    model = EvolutionModel(seed=11)
    step = model.evolve(config, 1)
    assert step.changed_countries, "seed 11 should touch someone"
    for code in CODES:
        same = (country_slice_fingerprint(config, code)
                == country_slice_fingerprint(step.config, code))
        assert same == (code not in step.changed_countries)


def test_evolution_preserves_vantage_ranks():
    """A scenario's vantage shift must survive evolution: mutating a
    country's world slice never silently moves its measurement back to
    the primary VPN exit."""
    ranked = CountryOverride(country="BR", vantage_rank=1)
    config = _config(country_overrides=(ranked,))
    model = EvolutionModel(seed=11)
    for step_number in range(1, 6):
        step = model.evolve(config, step_number)
        config = step.config
        override = config.override_for("BR")
        assert override is not None
        assert override.vantage_rank == 1


def test_mutations_compose_across_steps():
    config = _config(countries=None)
    model = EvolutionModel(seed=3)
    seen: dict[str, list] = {}
    for step_number in range(1, 6):
        step = model.evolve(config, step_number)
        config = step.config
        for mutation in step.mutations:
            seen.setdefault(mutation.country, []).append(mutation)
    twice_touched = [code for code, events in seen.items()
                     if len(events) >= 2]
    assert twice_touched, "5 steps over 61 countries must retouch someone"
    # A retouched country's override reflects its whole history, e.g.
    # two SOE formations leave extra_soes == 2.
    for code, events in seen.items():
        soes = sum(1 for event in events if event.kind == "new-soe")
        override = config.override_for(code)
        if soes and override is not None:
            assert override.extra_soes >= soes


def test_changed_countries_only_lists_mutated():
    model = EvolutionModel(seed=11)
    step = model.evolve(_config(countries=None), 1)
    assert step.changed_countries == \
        tuple(sorted({m.country for m in step.mutations}))
    for mutation in step.mutations:
        assert mutation.kind in MUTATION_KINDS


def test_selection_independent_decisions():
    """A country's evolution does not depend on who else is sampled."""
    model = EvolutionModel(seed=11)
    full = model.evolve(_config(countries=None), 1)
    subset = model.evolve(_config(), 1)
    full_by_country = {}
    for mutation in full.mutations:
        full_by_country.setdefault(mutation.country, []).append(mutation)
    subset_by_country = {}
    for mutation in subset.mutations:
        subset_by_country.setdefault(mutation.country, []).append(mutation)
    for code in CODES:
        assert full_by_country.get(code) == subset_by_country.get(code)


def test_rates_validated():
    with pytest.raises(ValueError):
        EvolutionRates(provider_gain=1.5)
    with pytest.raises(ValueError):
        EvolutionRates(soe_formation=-0.1)


def test_zero_rates_change_nothing():
    zero = EvolutionRates(provider_gain=0.0, provider_loss=0.0,
                          hyperscaler_migration=0.0, soe_formation=0.0,
                          prefix_reregistration=0.0)
    config = _config()
    step = EvolutionModel(seed=11, rates=zero).evolve(config, 1)
    assert step.mutations == ()
    assert step.config == config


def test_step_must_be_positive():
    with pytest.raises(ValueError):
        EvolutionModel(seed=11).evolve(_config(), 0)


def test_mutation_kind_validated():
    with pytest.raises(ValueError):
        Mutation(country="BR", kind="asteroid-strike")


def test_derived_configs_stay_valid():
    """Every evolved config passes WorldConfig's own validation and
    keeps shift/epoch inside the generator's accepted domains."""
    config = _config(countries=None)
    model = EvolutionModel(
        seed=5,
        rates=EvolutionRates(provider_gain=0.5, provider_loss=0.5,
                             hyperscaler_migration=0.9, soe_formation=0.5,
                             prefix_reregistration=0.9),
    )
    for step_number in range(1, 20):
        step = model.evolve(config, step_number)
        config = step.config
    for override in config.country_overrides:
        assert 0.0 <= override.hyperscaler_shift <= 0.5
        assert 0 <= override.prefix_epoch <= 31
        for _, factor in override.provider_tilt:
            assert factor > 0
