"""SnapshotSeries: incremental hit rates, byte identity, manifest chain."""

from __future__ import annotations

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.evolve import EvolutionRates, SnapshotSeries
from repro.evolve.series import SeriesIntegrityError

CODES = ("BR", "US", "FR", "DE", "JP", "IN", "ZA", "MX")


def _base_config() -> WorldConfig:
    return WorldConfig(seed=42, scale=0.05, countries=CODES)


@pytest.fixture(scope="module")
def series_records(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("series-cache")
    series = SnapshotSeries(
        _base_config(), 3, evolution_seed=11,
        cache=str(cache_dir), collect_manifests=True,
    )
    return series, series.run()


def test_series_shape(series_records):
    _, records = series_records
    assert [record.label for record in records] == ["T+0", "T+1", "T+2"]
    assert records[0].changed_countries == ()
    assert records[0].parent_fingerprint is None


def test_incremental_hit_rate_matches_unchanged_fraction(series_records):
    """The headline guarantee: hit rate == unchanged / total, exactly."""
    _, records = series_records
    total = len(CODES)
    assert records[0].cache_stats.misses == total  # cold base
    for record in records[1:]:
        changed = len(record.changed_countries)
        assert 0 < changed < total, "seed 11 should change some, not all"
        assert record.cache_stats.misses == changed
        assert record.cache_stats.hits == total - changed
        assert record.cache_stats.hit_rate == pytest.approx(
            record.expected_hit_rate
        )


def test_total_stats_accumulate(series_records):
    series, records = series_records
    assert series.total_stats.hits == \
        sum(record.cache_stats.hits for record in records)
    assert series.total_stats.misses == \
        sum(record.cache_stats.misses for record in records)


def test_manifest_chain(series_records):
    _, records = series_records
    assert records[0].manifest.evolution is None
    for position, record in enumerate(records[1:], start=1):
        evolution = record.manifest.evolution
        assert evolution["parent_fingerprint"] == \
            records[position - 1].fingerprint
        assert evolution["parent_fingerprint"] == \
            records[position - 1].manifest.fingerprint
        assert evolution["seed"] == 11
        assert evolution["step"] == position
        assert evolution["changed_countries"] == \
            list(record.changed_countries)


def test_manifest_evolution_round_trips(series_records, tmp_path):
    from repro.obs import RunManifest

    _, records = series_records
    path = tmp_path / "snapshot.manifest.json"
    records[1].manifest.write(path)
    loaded = RunManifest.read(path)
    assert loaded.evolution == records[1].manifest.evolution


def _dataset_bytes(dataset, tmp_path, name: str) -> bytes:
    from repro.io import save_dataset

    out = tmp_path / f"{name}.jsonl"
    save_dataset(dataset, out)
    return out.read_bytes()


def test_incremental_dataset_byte_identical_to_cold_run(series_records,
                                                        tmp_path):
    """A warm incremental snapshot equals a cold run of its config."""
    _, records = series_records
    evolved_config = records[1].config
    assert evolved_config != records[0].config
    cold = Pipeline(SyntheticWorld.generate(evolved_config)).run()
    assert _dataset_bytes(cold, tmp_path, "cold") == \
        _dataset_bytes(records[1].dataset, tmp_path, "warm")


def test_series_replay_is_deterministic(series_records, tmp_path):
    _, records = series_records
    replay = SnapshotSeries(
        _base_config(), 3, evolution_seed=11,
        cache=str(tmp_path / "fresh-cache"),
    ).run()
    for original, replayed in zip(records, replay):
        assert replayed.config == original.config
        assert replayed.fingerprint == original.fingerprint
        assert _dataset_bytes(replayed.dataset, tmp_path,
                              f"replay-{replayed.step}") == \
            _dataset_bytes(original.dataset, tmp_path,
                           f"orig-{original.step}")


def test_no_cache_series_still_runs(tmp_path):
    records = SnapshotSeries(
        WorldConfig(seed=7, scale=0.05, countries=("BR", "US")),
        2, evolution_seed=2,
    ).run()
    assert len(records) == 2
    assert records[0].cache_stats is None


def test_integrity_error_on_broken_contract(tmp_path):
    """Clearing the cache mid-series makes the incremental snapshot miss
    everything — the runner must refuse to call that incremental."""
    series = SnapshotSeries(
        WorldConfig(seed=7, scale=0.05, countries=("BR", "US", "FR")),
        3, evolution_seed=11, cache=str(tmp_path / "cache"),
    )
    original = series._run_snapshot

    def clearing(step, config, mutations, parent_fingerprint):
        if step == 1:
            series.cache.clear()
        return original(step, config, mutations, parent_fingerprint)

    series._run_snapshot = clearing
    with pytest.raises(SeriesIntegrityError):
        series.run()


def test_snapshot_count_validated():
    with pytest.raises(ValueError):
        SnapshotSeries(_base_config(), 0)
