"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.diversification import hhi
from repro.categories import HostingCategory
from repro.datagen.sitebuilder import largest_remainder
from repro.netsim.anycast import AnycastGroup
from repro.netsim.asn import PoP
from repro.netsim.latency import country_threshold_ms, propagation_rtt_ms
from repro.netsim.tls import Certificate
from repro.urltools import registrable_domain
from repro.world.geography import haversine_km

_share_lists = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False), min_size=1,
    max_size=50,
)


@given(_share_lists)
def test_hhi_bounds(shares):
    value = hhi(shares)
    assert 1.0 / len(shares) - 1e-9 <= value <= 1.0 + 1e-9


@given(_share_lists)
def test_hhi_scale_invariant(shares):
    assert hhi(shares) == pytest.approx(hhi([s * 3.5 for s in shares]),
                                        rel=1e-6)


@given(st.integers(min_value=1, max_value=49))
def test_hhi_uniform_is_minimum(n):
    assert hhi([1.0] * n) == pytest.approx(1.0 / n)


_coords = st.tuples(
    st.floats(min_value=-89.0, max_value=89.0),
    st.floats(min_value=-179.0, max_value=179.0),
)


@given(st.lists(_coords, min_size=1, max_size=8), _coords)
def test_anycast_catchment_is_argmin(pop_coords, client):
    pops = tuple(
        PoP(country=f"C{i}", city=f"c{i}", lat=lat, lon=lon)
        for i, (lat, lon) in enumerate(pop_coords)
    )
    group = AnycastGroup(address=1, asn=1, pops=pops)
    chosen = group.catchment(*client)
    chosen_distance = haversine_km(client[0], client[1], chosen.lat, chosen.lon)
    for pop in pops:
        other = haversine_km(client[0], client[1], pop.lat, pop.lon)
        assert chosen_distance <= other + 1e-6


@given(st.floats(min_value=0, max_value=25000))
def test_threshold_always_exceeds_propagation(span_km):
    # A server exactly at the span distance remains below the threshold.
    assert country_threshold_ms(span_km) > propagation_rtt_ms(span_km)


@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=30),
       st.randoms(use_true_random=False))
def test_largest_remainder_permutation_stable_total(total, n, rng):
    weights = [rng.random() + 0.01 for _ in range(n)]
    counts = largest_remainder(total, weights)
    assert sum(counts) == total


_hostname = st.from_regex(r"[a-z]{1,10}(\.[a-z]{1,10}){0,4}\.[a-z]{2,6}",
                          fullmatch=True)


@given(_hostname)
def test_registrable_domain_idempotent(hostname):
    domain = registrable_domain(hostname)
    assert registrable_domain(domain) == domain
    assert 1 <= domain.count(".") <= 2


@given(_hostname)
def test_certificate_covers_subject_and_sans(hostname):
    certificate = Certificate(subject=hostname, sans=(hostname,))
    assert certificate.covers(hostname)
    assert certificate.covers(hostname.upper())
    assert not certificate.covers("unrelated.example")


@given(st.sampled_from(sorted(HostingCategory, key=lambda c: c.value)))
def test_category_third_party_partition(category):
    assert category.is_third_party == (category is not HostingCategory.GOVT_SOE)


@settings(max_examples=25)
@given(st.integers(min_value=0, max_value=2**31), st.integers(2, 30))
def test_mix_assignment_matches_targets(seed, n_slots):
    """The generator's greedy category assignment tracks any target mix."""
    rng = random.Random(seed)
    budgets = sorted(
        (max(1, int(rng.paretovariate(1.2) * 10)) for _ in range(n_slots)),
        reverse=True,
    )
    total = sum(budgets)
    shares = [rng.random() + 0.05 for _ in range(4)]
    share_sum = sum(shares)
    shares = [s / share_sum for s in shares]
    targets = dict(zip(HostingCategory, [s * total for s in shares]))
    assigned = {category: 0 for category in HostingCategory}
    remaining = dict(targets)
    for budget in budgets:
        category = max(remaining, key=lambda c: remaining[c])
        assigned[category] += budget
        remaining[category] -= budget
    # Greedy is within the largest single budget of every target.
    biggest = budgets[0]
    for category in HostingCategory:
        assert abs(assigned[category] - targets[category]) <= biggest + 1e-9
