"""Tests for the HAR-producing browser and topsite definitions."""

import pytest

from repro.measure.vpn import VpnCatalog
from repro.websim.browser import Browser
from repro.websim.topsites import COMPARISON_COUNTRIES, TopSite, TopsiteHosting
from repro.websim.webserver import PageNotFoundError, WebFabric
from tests.websim.test_sites_webserver import _make_site


def test_browser_emits_har_entries():
    fabric = WebFabric()
    site = _make_site()
    fabric.register_site(site)
    browser = Browser(fabric)
    vantage = VpnCatalog().vantage_for("BR")
    load = browser.load(site.landing_url, vantage)
    assert load.url == site.landing_url
    # One entry for the page itself plus one per embedded resource.
    assert len(load.entries) == 2
    assert load.entries[0].url == site.landing_url
    assert load.entries[0].content_type == "text/html"
    assert load.entries[1].size_bytes == 1000
    assert load.links == ("https://www.health.gov.br/l1/p0",)


def test_browser_propagates_404():
    browser = Browser(WebFabric())
    vantage = VpnCatalog().vantage_for("BR")
    with pytest.raises(PageNotFoundError):
        browser.load("https://missing/", vantage)


def test_comparison_countries_are_two_per_region():
    assert len(COMPARISON_COUNTRIES) == 14
    from repro.world.countries import get_country

    regions = {}
    for code in COMPARISON_COUNTRIES:
        region = get_country(code).region
        regions[region] = regions.get(region, 0) + 1
    # Every country resolves and at least 6 distinct regions are covered
    # (the paper assigns Egypt to the Africa pair of Table 6).
    assert len(regions) >= 6


def test_topsite_rank_validation():
    with pytest.raises(ValueError):
        TopSite(country="BR", hostname="h", landing_url="u", rank=0,
                truth_hosting=TopsiteHosting.GLOBAL)
