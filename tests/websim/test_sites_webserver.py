"""Tests for the web substrate: sites, pages, serving, geo-blocking."""

import pytest

from repro.websim.sites import GovernmentSite, Page, Resource, SiteKind
from repro.websim.webserver import GeoBlockedError, PageNotFoundError, WebFabric


def _make_site(geo_restricted=False):
    landing = Page(
        url="https://www.health.gov.br/",
        hostname="www.health.gov.br",
        depth=0,
        resources=(
            Resource(url="https://www.health.gov.br/a.js",
                     hostname="www.health.gov.br", size_bytes=1000),
        ),
        links=("https://www.health.gov.br/l1/p0",),
        size_bytes=5000,
    )
    deep = Page(
        url="https://www.health.gov.br/l1/p0",
        hostname="www.health.gov.br",
        depth=1,
        resources=(),
        links=(),
        size_bytes=2000,
    )
    return GovernmentSite(
        country="BR",
        hostname="www.health.gov.br",
        landing_url=landing.url,
        kind=SiteKind.MINISTRY,
        pages={landing.url: landing, deep.url: deep},
        geo_restricted=geo_restricted,
    )


def test_resource_rejects_negative_size():
    with pytest.raises(ValueError):
        Resource(url="u", hostname="h", size_bytes=-1)


def test_site_navigation_helpers():
    site = _make_site()
    assert site.landing_page().depth == 0
    assert site.page("https://www.health.gov.br/l1/p0").depth == 1
    assert site.page("https://missing/") is None
    assert site.max_depth == 1
    assert len(list(site.iter_pages())) == 2


def test_unique_urls_counts_pages_and_resources():
    site = _make_site()
    urls = site.unique_urls()
    assert len(urls) == 3  # two pages + one resource
    assert "https://www.health.gov.br/a.js" in urls


def test_page_all_resource_urls_includes_self():
    site = _make_site()
    urls = site.landing_page().all_resource_urls()
    assert urls[0] == site.landing_url
    assert len(urls) == 2


def test_fabric_serves_registered_pages():
    fabric = WebFabric()
    site = _make_site()
    fabric.register_site(site)
    page = fabric.fetch(site.landing_url, "BR")
    assert page is site.landing_page()
    assert fabric.site_of("www.health.gov.br") is site
    assert fabric.page_count == 2


def test_fabric_404():
    fabric = WebFabric()
    with pytest.raises(PageNotFoundError):
        fabric.fetch("https://nowhere/", "BR")


def test_geo_restriction_blocks_foreign_clients():
    fabric = WebFabric()
    fabric.register_site(_make_site(geo_restricted=True))
    with pytest.raises(GeoBlockedError):
        fabric.fetch("https://www.health.gov.br/", "US")
    # Domestic clients pass -- the reason the study uses in-country VPNs.
    assert fabric.fetch("https://www.health.gov.br/", "BR") is not None


def test_duplicate_site_rejected():
    fabric = WebFabric()
    fabric.register_site(_make_site())
    with pytest.raises(ValueError):
        fabric.register_site(_make_site())
