"""The event layer: bounded ring semantics and thread-local scoping."""

import threading

import pytest

from repro.obs.events import EventLog, collecting, emit


# --------------------------------------------------------------- EventLog


def test_ring_is_bounded_but_sequence_keeps_counting():
    log = EventLog(capacity=3)
    for i in range(10):
        log.emit("tick", i=i)
    assert len(log) == 3
    assert log.emitted == 10
    kept = log.tail()
    assert [e.seq for e in kept] == [7, 8, 9]
    # The first kept seq tells a reader how many fell off.
    assert kept[0].seq == 7


def test_sequence_is_gap_free_in_append_order():
    log = EventLog()
    for i in range(5):
        log.emit("tick", i=i)
    assert [e.seq for e in log.tail()] == [0, 1, 2, 3, 4]


def test_tail_and_of_kind():
    log = EventLog()
    log.emit("a", n=1)
    log.emit("b", n=2)
    log.emit("a", n=3)
    assert [e.payload["n"] for e in log.tail(2)] == [2, 3]
    assert [e.payload["n"] for e in log.of_kind("a")] == [1, 3]
    assert log.of_kind("missing") == ()


def test_to_dicts_is_json_ready():
    log = EventLog()
    event = log.emit("run.recorded", id="abc")
    (payload,) = log.to_dicts()
    assert payload == {"seq": 0, "kind": "run.recorded",
                       "monotonic_ns": event.monotonic_ns,
                       "payload": {"id": "abc"}}


def test_capacity_must_be_positive():
    with pytest.raises(ValueError, match="capacity"):
        EventLog(capacity=0)


def test_concurrent_emitters_never_lose_or_duplicate_sequences():
    log = EventLog(capacity=10_000)
    def hammer():
        for _ in range(250):
            log.emit("tick")
    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert log.emitted == 1000
    assert sorted(e.seq for e in log.tail()) == list(range(1000))


# ---------------------------------------------------------------- scoping


def test_emit_without_scope_is_a_no_op():
    emit("memo.build", table="x")  # must not raise or leak anywhere
    with collecting() as sink:
        pass
    assert sink == []


def test_collecting_captures_emits_on_this_thread():
    with collecting() as sink:
        emit("memo.build", table="flow")
        emit("memo.hit", table="flow")
    assert [e.kind for e in sink] == ["memo.build", "memo.hit"]
    assert sink[0].payload == {"table": "flow"}
    # Captured events carry a monotonic stamp but no log sequence.
    assert sink[0].seq == -1
    # The scope is closed: further emits go nowhere.
    emit("memo.hit", table="flow")
    assert len(sink) == 2


def test_scopes_nest_and_restore():
    with collecting() as outer:
        emit("outer.before")
        with collecting() as inner:
            emit("inner.only")
        emit("outer.after")
    assert [e.kind for e in inner] == ["inner.only"]
    assert [e.kind for e in outer] == ["outer.before", "outer.after"]


def test_scopes_are_per_thread():
    seen_in_worker = []

    def worker():
        emit("worker.unscoped")  # the main thread's scope must not see this
        with collecting() as mine:
            emit("worker.scoped")
        seen_in_worker.extend(mine)

    with collecting() as main_sink:
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        emit("main.scoped")
    assert [e.kind for e in main_sink] == ["main.scoped"]
    assert [e.kind for e in seen_in_worker] == ["worker.scoped"]
