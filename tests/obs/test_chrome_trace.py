"""Chrome trace_event export: schema and consistency on a real run."""

import json

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.obs import Observability


@pytest.fixture(scope="module")
def traced_run():
    obs = Observability()
    world = SyntheticWorld.generate(WorldConfig(
        seed=13, scale=0.02, countries=("BR", "US"),
        include_topsites=False,
    ))
    Pipeline(world, obs=obs).run(["BR", "US"])
    return obs.tracer


def test_export_is_json_serializable(traced_run):
    document = traced_run.to_chrome()
    restored = json.loads(json.dumps(document))
    assert restored == document


def test_document_schema(traced_run):
    document = traced_run.to_chrome()
    assert set(document) == {"traceEvents", "displayTimeUnit"}
    assert document["displayTimeUnit"] == "ms"
    assert document["traceEvents"], "a real run must produce events"


def test_every_event_is_a_complete_event(traced_run):
    for event in traced_run.to_chrome()["traceEvents"]:
        assert set(event) == {"name", "ph", "ts", "dur", "pid", "tid",
                              "args"}
        assert event["ph"] == "X"
        assert isinstance(event["name"], str) and event["name"]
        assert event["ts"] >= 0.0  # relative to the trace origin
        assert event["dur"] >= 0.0
        assert event["pid"] == 0 and event["tid"] == 0
        assert isinstance(event["args"], dict)


def test_events_cover_the_pipeline_stages(traced_run):
    names = {e["name"] for e in traced_run.to_chrome()["traceEvents"]}
    assert {"pipeline.run", "scan", "merge", "finalize"} <= names


def test_children_nest_within_their_parents(traced_run):
    """Microsecond intervals must agree with the span tree's nesting."""
    events = {}

    def collect(span):
        events[id(span)] = span
        for child in span.children:
            collect(child)

    for root in traced_run.roots:
        collect(root)
    for span in events.values():
        for child in span.children:
            assert child.start_s >= span.start_s
            assert child.end_s <= span.end_s

    # And the exported run event spans its stage events.
    exported = traced_run.to_chrome()["traceEvents"]
    run = next(e for e in exported if e["name"] == "pipeline.run")
    for stage in (e for e in exported
                  if e["name"] in ("scan", "merge", "finalize")):
        assert stage["ts"] >= run["ts"]
        assert stage["ts"] + stage["dur"] <= run["ts"] + run["dur"] + 0.2


def test_tags_become_args(traced_run):
    exported = traced_run.to_chrome()["traceEvents"]
    run = next(e for e in exported if e["name"] == "pipeline.run")
    assert run["args"].get("countries") == 2
