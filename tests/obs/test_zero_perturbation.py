"""The zero-perturbation contract of the observability layer.

A run with tracing and metrics on must produce a dataset **and**
rendered report byte-identical to a bare run — under every executor,
with fault injection on or off, cold or warm cache.  Instrumentation
only reads ``time.perf_counter`` and values the pipeline already
computed, so these tests are the enforcement of that design rule.

The merged metrics and trace *structure* must additionally be
identical across executors (values measured in wall time are not part
of that contract — they are real timings).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.cache import ScanCache
from repro.exec import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.io import save_dataset
from repro.obs import Observability
from repro.reporting.paper_report import render_paper_report

COUNTRIES = ("BR", "US", "FR", "MA")
CONFIG = WorldConfig(seed=17, scale=0.02, countries=COUNTRIES,
                     include_topsites=False)
FAULTED = dataclasses.replace(CONFIG, fault_rate=0.15)

EXECUTORS = {
    "serial": SerialExecutor,
    "threads": lambda: ThreadExecutor(workers=2),
    "processes": lambda: ProcessExecutor(workers=2),
}


@pytest.fixture(scope="module")
def plain_world() -> SyntheticWorld:
    return SyntheticWorld.generate(CONFIG)


@pytest.fixture(scope="module")
def faulted_world() -> SyntheticWorld:
    return SyntheticWorld.generate(FAULTED)


def _run(world, tmp_path, name, observed, executor_factory=SerialExecutor,
         cache=None):
    """One pipeline run; returns (dataset bytes, report text, pipeline)."""
    obs = Observability() if observed else None
    pipeline = Pipeline(world, obs=obs)
    with executor_factory() as executor:
        dataset = pipeline.run(list(COUNTRIES), executor=executor,
                               cache=cache)
    out = tmp_path / f"{name}.jsonl"
    save_dataset(dataset, out)
    return out.read_bytes(), render_paper_report(dataset), pipeline


@pytest.fixture(scope="module")
def plain_baseline(plain_world, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("plain-baseline")
    data, report, _ = _run(plain_world, tmp, "bare", observed=False)
    return data, report


@pytest.fixture(scope="module")
def faulted_baseline(faulted_world, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("faulted-baseline")
    data, report, _ = _run(faulted_world, tmp, "bare", observed=False)
    return data, report


@pytest.mark.parametrize("executor", list(EXECUTORS), ids=list(EXECUTORS))
def test_traced_run_is_byte_identical(plain_world, plain_baseline, tmp_path,
                                      executor):
    data, report, pipeline = _run(
        plain_world, tmp_path, executor, observed=True,
        executor_factory=EXECUTORS[executor],
    )
    bare_data, bare_report = plain_baseline
    assert data == bare_data
    assert report == bare_report
    # The run was actually observed, not silently skipped.
    assert pipeline.obs.tracer.find("pipeline.run") is not None
    assert pipeline.obs.metrics.counter("geo.addresses") > 0


@pytest.mark.parametrize("executor", list(EXECUTORS), ids=list(EXECUTORS))
def test_traced_faulted_run_is_byte_identical(faulted_world, faulted_baseline,
                                              tmp_path, executor):
    data, report, pipeline = _run(
        faulted_world, tmp_path, executor, observed=True,
        executor_factory=EXECUTORS[executor],
    )
    bare_data, bare_report = faulted_baseline
    assert data == bare_data
    assert report == bare_report
    assert pipeline.obs.metrics.counter("faults.injected") > 0


def test_traced_cold_and_warm_cache_are_byte_identical(plain_world,
                                                       plain_baseline,
                                                       tmp_path):
    bare_data, _ = plain_baseline
    cold_cache = ScanCache(tmp_path / "cache")
    cold, _, cold_pipeline = _run(plain_world, tmp_path, "cold",
                                  observed=True, cache=cold_cache)
    warm_cache = ScanCache(tmp_path / "cache")
    warm, _, warm_pipeline = _run(plain_world, tmp_path, "warm",
                                  observed=True, cache=warm_cache)
    assert cold == bare_data
    assert warm == bare_data
    assert warm_cache.stats.misses == 0
    # Driver-side metrics cover warm runs too: the funnel replays from
    # the (cache-served) partials, the cache family from the stats.
    cold_metrics = cold_pipeline.obs.metrics
    warm_metrics = warm_pipeline.obs.metrics
    assert warm_metrics.counter("geo.addresses") == \
        cold_metrics.counter("geo.addresses")
    assert warm_metrics.counter("cache.hits") == len(COUNTRIES)
    assert cold_metrics.counter("cache.misses") == len(COUNTRIES)


def test_merged_metrics_are_executor_independent(plain_world, tmp_path):
    registries = []
    for name, factory in EXECUTORS.items():
        _, _, pipeline = _run(plain_world, tmp_path, f"metrics-{name}",
                              observed=True, executor_factory=factory)
        registries.append(pipeline.obs.metrics.to_dict())
    assert registries[0] == registries[1] == registries[2]


def test_trace_structure_is_executor_independent(plain_world, tmp_path):
    shapes = []
    for name, factory in EXECUTORS.items():
        _, _, pipeline = _run(plain_world, tmp_path, f"shape-{name}",
                              observed=True, executor_factory=factory)
        exported = pipeline.obs.tracer.to_dict()
        run_span = exported["spans"][0]
        scan_phase = run_span["children"][0]
        shapes.append([
            (scan["tags"]["country"],
             [stage["name"] for stage in scan["children"]])
            for scan in scan_phase["children"]
        ])
    assert shapes[0] == shapes[1] == shapes[2]
    # Canonical country order, not completion order.
    assert [country for country, _ in shapes[0]] == sorted(COUNTRIES)


def test_funnel_counters_match_validation_stats(plain_world, tmp_path):
    _, _, pipeline = _run(plain_world, tmp_path, "funnel", observed=True)
    dataset = Pipeline(plain_world).run(list(COUNTRIES))
    metrics = pipeline.obs.metrics
    stats = dataset.validation
    assert metrics.counter("geo.funnel.active_probing") == stats.unicast_ap
    multistage = (metrics.counter("geo.funnel.hoiho")
                  + metrics.counter("geo.funnel.ipmap")
                  + metrics.counter("geo.funnel.single_radius"))
    assert multistage == stats.unicast_mg
    assert metrics.counter("geo.funnel.conflict") == stats.unicast_conflicts
    assert metrics.counter("geo.addresses") == \
        stats.unicast_total + stats.anycast_total


def test_progress_heartbeat_fires_once_per_country(plain_world, tmp_path):
    beats = []

    def heartbeat(country, seconds, completed, expected):
        beats.append((country, completed, expected))

    pipeline = Pipeline(plain_world, obs=Observability(progress=heartbeat))
    pipeline.run(list(COUNTRIES))
    assert sorted(country for country, _, _ in beats) == sorted(COUNTRIES)
    assert [completed for _, completed, _ in beats] == [1, 2, 3, 4]
    assert all(expected == len(COUNTRIES) for _, _, expected in beats)
