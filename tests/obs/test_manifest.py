"""Run manifests: collection, round-trip, fingerprint stability."""

import json

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.cache.fingerprint import run_fingerprint
from repro.obs import (
    MANIFEST_FORMAT_VERSION,
    Observability,
    RunManifest,
    SUPPORTED_MANIFEST_FORMATS,
    manifest_path_for,
    tool_version,
)

COUNTRIES = ("BR", "US", "FR")
CONFIG = WorldConfig(seed=21, scale=0.02, countries=COUNTRIES,
                     include_topsites=False)


@pytest.fixture(scope="module")
def observed_run():
    world = SyntheticWorld.generate(CONFIG)
    pipeline = Pipeline(world, obs=Observability())
    dataset = pipeline.run(list(COUNTRIES))
    return pipeline, dataset


def test_collect_records_run_identity(observed_run):
    pipeline, dataset = observed_run
    manifest = RunManifest.collect(pipeline, dataset, obs=pipeline.obs)
    assert manifest.seed == CONFIG.seed
    assert manifest.scale == CONFIG.scale
    assert manifest.countries == sorted(COUNTRIES)
    assert manifest.executor == "serial"
    assert manifest.max_depth == pipeline.crawler.max_depth
    assert manifest.fault_rate == 0.0
    assert manifest.faults == {"injected": 0, "retried": 0,
                               "recovered": 0, "degraded": 0}
    assert manifest.cache is None
    summary = dataset.summarize()
    assert manifest.summary["total_unique_urls"] == summary.total_unique_urls
    assert manifest.summary["unique_hostnames"] == summary.unique_hostnames


def test_collect_fingerprint_matches_cache_derivation(observed_run):
    pipeline, dataset = observed_run
    manifest = RunManifest.collect(pipeline, dataset)
    assert manifest.fingerprint == run_fingerprint(
        CONFIG, pipeline.crawler.max_depth, pipeline.fault_plan
    )


def test_fingerprint_is_stable_and_input_sensitive(observed_run):
    pipeline, dataset = observed_run
    first = RunManifest.collect(pipeline, dataset)
    second = RunManifest.collect(pipeline, dataset)
    assert first.fingerprint == second.fingerprint

    other_config = WorldConfig(seed=22, scale=0.02, countries=COUNTRIES,
                               include_topsites=False)
    assert run_fingerprint(
        other_config, pipeline.crawler.max_depth, pipeline.fault_plan
    ) != first.fingerprint


def test_stage_seconds_come_from_the_trace(observed_run):
    pipeline, dataset = observed_run
    manifest = RunManifest.collect(pipeline, dataset, obs=pipeline.obs)
    assert set(manifest.stage_seconds) == {"total", "scan", "merge",
                                           "finalize"}
    assert manifest.stage_seconds["total"] >= manifest.stage_seconds["scan"]
    untraced = RunManifest.collect(pipeline, dataset)
    assert untraced.stage_seconds == {}


def test_versions_cover_the_reproducibility_surface(observed_run):
    pipeline, dataset = observed_run
    manifest = RunManifest.collect(pipeline, dataset)
    assert set(manifest.versions) >= {"repro", "python", "numpy",
                                      "implementation"}


def test_write_read_round_trip(observed_run, tmp_path):
    pipeline, dataset = observed_run
    manifest = RunManifest.collect(pipeline, dataset, obs=pipeline.obs)
    path = manifest.write(tmp_path / "ds.jsonl.manifest.json")
    restored = RunManifest.read(path)
    assert restored == manifest
    # The on-disk form is stable, sorted JSON.
    data = json.loads(path.read_text())
    assert list(data) == sorted(data)


def test_read_rejects_unknown_format(observed_run, tmp_path):
    pipeline, dataset = observed_run
    manifest = RunManifest.collect(pipeline, dataset)
    path = manifest.write(tmp_path / "m.json")
    payload = json.loads(path.read_text())
    payload["format"] = 99
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="unsupported manifest format"):
        RunManifest.read(path)


def test_from_dict_ignores_unknown_fields(observed_run):
    pipeline, dataset = observed_run
    manifest = RunManifest.collect(pipeline, dataset)
    payload = manifest.to_dict()
    payload["added_in_a_future_version"] = True
    assert RunManifest.from_dict(payload) == manifest


def test_collected_manifest_records_the_tool_version(observed_run):
    pipeline, dataset = observed_run
    manifest = RunManifest.collect(pipeline, dataset)
    assert manifest.format == MANIFEST_FORMAT_VERSION == 2
    assert manifest.tool_version == tool_version()
    assert manifest.tool_version != "unknown"


def test_read_accepts_old_format_without_tool_version(observed_run,
                                                      tmp_path):
    """Backward: a format-1 manifest (pre-tool_version) still loads."""
    pipeline, dataset = observed_run
    manifest = RunManifest.collect(pipeline, dataset)
    payload = manifest.to_dict()
    payload["format"] = 1
    del payload["tool_version"]
    path = tmp_path / "old.json"
    path.write_text(json.dumps(payload))
    restored = RunManifest.read(path)
    # An old manifest must not claim the *reader's* version.
    assert restored.tool_version == "unknown"
    assert restored.fingerprint == manifest.fingerprint
    assert set(SUPPORTED_MANIFEST_FORMATS) == {1, 2}


def test_from_dict_preserves_an_explicit_tool_version(observed_run):
    """Forward: a newer writer's tool_version survives the round trip."""
    pipeline, dataset = observed_run
    payload = RunManifest.collect(pipeline, dataset).to_dict()
    payload["tool_version"] = "9.9.9"
    assert RunManifest.from_dict(payload).tool_version == "9.9.9"


def test_tool_version_never_raises():
    assert isinstance(tool_version(), str)
    assert tool_version()


def test_manifest_path_is_a_dataset_sibling(tmp_path):
    assert manifest_path_for(tmp_path / "run.jsonl").name == \
        "run.jsonl.manifest.json"


def test_faulted_run_manifest_accounts_faults():
    config = WorldConfig(seed=21, scale=0.02, countries=COUNTRIES,
                         include_topsites=False, fault_rate=0.2)
    world = SyntheticWorld.generate(config)
    pipeline = Pipeline(world)
    dataset = pipeline.run(list(COUNTRIES))
    manifest = RunManifest.collect(pipeline, dataset)
    assert manifest.fault_rate == 0.2
    assert manifest.faults["injected"] > 0
    assert manifest.fault_seed == pipeline.fault_plan.seed
