"""Tracer structure: nesting, thread safety, exports."""

import concurrent.futures
import json

from repro.obs import Span, Tracer


def test_spans_nest_through_the_context_manager():
    tracer = Tracer()
    with tracer.span("outer", kind="test") as outer:
        with tracer.span("inner") as inner:
            pass
    assert tracer.roots == [outer]
    assert outer.children == [inner]
    assert outer.tags == {"kind": "test"}
    assert outer.end_s >= inner.end_s >= inner.start_s >= outer.start_s


def test_sibling_spans_share_a_parent():
    tracer = Tracer()
    with tracer.span("parent"):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    (parent,) = tracer.roots
    assert [child.name for child in parent.children] == ["a", "b"]


def test_thread_local_stacks_keep_nesting_correct():
    tracer = Tracer()

    def worker(i: int) -> None:
        with tracer.span(f"scan-{i}"):
            with tracer.span("stage"):
                pass

    with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
        list(pool.map(worker, range(8)))
    assert len(tracer.roots) == 8
    for root in tracer.roots:
        assert root.name.startswith("scan-")
        assert [c.name for c in root.children] == ["stage"]


def test_walk_and_find():
    root = Span(name="run", start_s=0.0, end_s=3.0)
    scan = Span(name="scan", start_s=0.0, end_s=2.0)
    crawl = Span(name="crawl", start_s=0.0, end_s=1.0)
    scan.children.append(crawl)
    root.children.append(scan)
    assert [s.name for s in root.walk()] == ["run", "scan", "crawl"]
    assert root.find("crawl") is crawl
    assert root.find("absent") is None


def test_finish_is_idempotent():
    span = Span(name="x", start_s=1.0)
    span.finish()
    first_end = span.end_s
    span.finish()
    assert span.end_s == first_end


def test_to_dict_rebases_onto_origin():
    tracer = Tracer()
    with tracer.span("only"):
        pass
    exported = tracer.to_dict()
    assert exported["format"] == 1
    (span,) = exported["spans"]
    assert span["name"] == "only"
    assert span["start_s"] >= 0.0
    assert span["duration_s"] >= 0.0
    assert span["children"] == []
    json.dumps(exported)  # must be JSON-serializable


def test_chrome_export_is_one_complete_event_per_span():
    tracer = Tracer()
    with tracer.span("outer", label="x"):
        with tracer.span("inner"):
            pass
    chrome = tracer.to_chrome()
    assert chrome["displayTimeUnit"] == "ms"
    events = chrome["traceEvents"]
    assert [e["name"] for e in events] == ["outer", "inner"]
    for event in events:
        assert event["ph"] == "X"
        assert event["ts"] >= 0.0
        assert event["dur"] >= 0.0
    assert events[0]["args"] == {"label": "x"}
    json.dumps(chrome)


def test_attach_grafts_foreign_spans():
    tracer = Tracer()
    foreign = Span(name="shipped", start_s=0.0, end_s=1.0)
    with tracer.span("run") as run:
        tracer.attach(run, foreign)
    assert tracer.find("shipped") is foreign
