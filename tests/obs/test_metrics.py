"""Monoid laws and serialization of the metrics registry.

The merge contract is what makes parallel metrics deterministic, so it
is tested the same way as the data reductions in ``tests/exec``:
associativity, commutativity and identity over representative
registries mixing all three families.
"""

import json

import pytest

from repro.obs import MetricsRegistry, merge_metrics


def _registry_a() -> MetricsRegistry:
    r = MetricsRegistry()
    r.count("crawl.pages", 10)
    r.count("geo.lookups", 3)
    r.gauge("peak.hosts", 7)
    r.observe("depth", 0, 4)
    r.observe("depth", 1, 2)
    return r


def _registry_b() -> MetricsRegistry:
    r = MetricsRegistry()
    r.count("crawl.pages", 5)
    r.count("cache.hits", 2)
    r.gauge("peak.hosts", 11)
    r.gauge("peak.urls", 40)
    r.observe("depth", 1, 1)
    r.observe("size", "large", 6)
    return r


def _registry_c() -> MetricsRegistry:
    r = MetricsRegistry()
    r.count("geo.lookups", 9)
    r.gauge("peak.hosts", 2)
    r.observe("depth", 2, 8)
    return r


def test_merge_is_associative():
    a, b, c = _registry_a(), _registry_b(), _registry_c()
    assert (a + b) + c == a + (b + c)


def test_merge_is_commutative():
    a, b = _registry_a(), _registry_b()
    assert a + b == b + a


def test_empty_registry_is_identity():
    a = _registry_a()
    empty = MetricsRegistry()
    assert a + empty == a
    assert empty + a == a
    assert not empty
    assert a


def test_counters_sum_histograms_sum_gauges_max():
    merged = _registry_a() + _registry_b()
    assert merged.counter("crawl.pages") == 15
    assert merged.counter("cache.hits") == 2
    assert merged.gauge_value("peak.hosts") == 11
    assert merged.gauge_value("peak.urls") == 40
    assert merged.histogram("depth") == {0: 4, 1: 3}
    assert merged.histogram("size") == {"large": 6}


def test_merge_does_not_mutate_operands():
    a, b = _registry_a(), _registry_b()
    a + b
    assert a == _registry_a()
    assert b == _registry_b()


def test_merge_metrics_reduces_any_iterable():
    merged = merge_metrics([_registry_a(), _registry_b(), _registry_c()])
    assert merged == (_registry_a() + _registry_b()) + _registry_c()
    assert merge_metrics([]) == MetricsRegistry()


def test_reads_never_create_entries():
    r = MetricsRegistry()
    assert r.counter("never") == 0
    assert r.gauge_value("never") is None
    assert r.histogram("never") == {}
    assert not r


def test_to_dict_round_trips_through_json():
    a = _registry_a() + _registry_b()
    payload = json.loads(json.dumps(a.to_dict()))
    assert MetricsRegistry.from_dict(payload) == a


def test_to_dict_is_canonically_sorted():
    r = MetricsRegistry()
    r.count("zebra")
    r.count("alpha")
    assert list(r.to_dict()["counters"]) == ["alpha", "zebra"]


def test_histogram_buckets_restore_integer_keys():
    r = MetricsRegistry()
    r.observe("depth", 3, 2)
    r.observe("depth", -1, 1)
    r.observe("kind", "big", 4)
    restored = MetricsRegistry.from_dict(json.loads(json.dumps(r.to_dict())))
    assert restored.histogram("depth") == {3: 2, -1: 1}
    assert restored.histogram("kind") == {"big": 4}


def test_add_rejects_foreign_types():
    with pytest.raises(TypeError):
        _registry_a() + 3
