"""The run registry: journal integrity, queries, and manifest diffing."""

import json

import pytest

from repro.obs import RunManifest
from repro.obs.registry import (
    JOURNAL_NAME,
    RegistryError,
    RunRegistry,
    diff_manifests,
    diff_runs,
    manifest_id,
)


def make_manifest(**overrides) -> RunManifest:
    """A small, fully-specified manifest (no pipeline run needed)."""
    base = dict(
        fingerprint="a" * 32,
        seed=7,
        scale=0.05,
        countries=["BR", "FR", "US"],
        executor="serial",
        workers=None,
        max_depth=2,
        fault_rate=0.0,
        fault_profile="mixed",
        fault_seed=None,
        summary={"landing_urls": 3, "internal_urls": 40,
                 "total_unique_urls": 43, "unique_hostnames": 30,
                 "ases": 12, "unique_addresses": 25},
        stage_seconds={"total": 1.5, "scan": 1.2, "merge": 0.2,
                       "finalize": 0.1},
        cache={"hits": 2, "misses": 1, "hit_rate": 2 / 3},
        faults={"injected": 0, "retried": 0, "recovered": 0, "degraded": 0},
        versions={"repro": "1.0.0", "python": "3.11.0", "numpy": "1.26.0",
                  "implementation": "cpython"},
        tool_version="1.0.0",
    )
    base.update(overrides)
    return RunManifest(**base)


# ---------------------------------------------------------------- journal


def test_record_appends_and_is_idempotent(tmp_path):
    registry = RunRegistry(tmp_path)
    manifest = make_manifest()
    run, created = registry.record(manifest)
    assert created
    assert run.seq == 0
    assert run.id == manifest_id(manifest)

    again, created_again = registry.record(make_manifest())
    assert not created_again
    assert again is run
    assert len(registry) == 1
    # Exactly one journal line was written.
    lines = (tmp_path / JOURNAL_NAME).read_text().splitlines()
    assert len(lines) == 1


def test_journal_reloads_identically(tmp_path):
    first = RunRegistry(tmp_path)
    first.record(make_manifest(seed=1, fingerprint="b" * 32))
    first.record(make_manifest(seed=2, fingerprint="c" * 32))

    reloaded = RunRegistry(tmp_path)
    assert len(reloaded) == 2
    assert reloaded.runs() == first.runs()
    assert [run.seq for run in reloaded.runs()] == [0, 1]


def test_recording_emits_an_event(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.record(make_manifest())
    events = registry.events.of_kind("run.recorded")
    assert len(events) == 1
    assert events[0].payload["seq"] == 0


def test_torn_final_line_is_recovered(tmp_path, caplog):
    registry = RunRegistry(tmp_path)
    registry.record(make_manifest(seed=1, fingerprint="b" * 32))
    registry.record(make_manifest(seed=2, fingerprint="c" * 32))
    journal = tmp_path / JOURNAL_NAME
    # Simulate a crashed writer: the last append lost its tail.
    torn = journal.read_text()[:-20]
    assert not torn.endswith("\n")
    journal.write_text(torn)

    with caplog.at_level("WARNING"):
        recovered = RunRegistry(tmp_path)
    assert len(recovered) == 1
    assert recovered.runs()[0].manifest.seed == 1
    assert any("torn" in record.message for record in caplog.records)


def test_corrupt_middle_line_names_the_line(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.record(make_manifest(seed=1, fingerprint="b" * 32))
    registry.record(make_manifest(seed=2, fingerprint="c" * 32))
    journal = tmp_path / JOURNAL_NAME
    lines = journal.read_text().splitlines()
    lines[0] = "{not json"
    journal.write_text("\n".join(lines) + "\n")
    with pytest.raises(RegistryError, match="line 1"):
        RunRegistry(tmp_path)


def test_edited_manifest_content_is_detected(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.record(make_manifest())
    journal = tmp_path / JOURNAL_NAME
    record = json.loads(journal.read_text())
    record["manifest"]["seed"] = 999  # tamper without re-addressing
    journal.write_text(json.dumps(record) + "\n")
    with pytest.raises(RegistryError, match="does not match its manifest"):
        RunRegistry(tmp_path)


def test_out_of_order_seq_is_rejected(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.record(make_manifest())
    journal = tmp_path / JOURNAL_NAME
    record = json.loads(journal.read_text())
    record["seq"] = 5
    # Keep the content address honest: only seq is wrong.
    journal.write_text(json.dumps(record) + "\n")
    with pytest.raises(RegistryError, match="append-only"):
        RunRegistry(tmp_path)


# ----------------------------------------------------------------- lookup


@pytest.fixture()
def populated(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.record(make_manifest(seed=1, fingerprint="b" * 32))
    registry.record(make_manifest(
        seed=2, fingerprint="c" * 32, executor="threads", workers=4,
        stage_seconds={"total": 9.0}, cache=None,
    ))
    registry.record(make_manifest(
        seed=3, fingerprint="d" * 32, scale=0.1, stage_seconds={},
        cache={"hits": 0, "misses": 3, "hit_rate": 0.0},
    ))
    return registry


def test_get_by_seq_and_prefix(populated):
    by_seq = populated.get("1")
    assert by_seq.manifest.seed == 2
    assert populated.get(by_seq.id) is by_seq
    assert populated.get(by_seq.id[:6]) is by_seq


def test_get_rejects_bad_references(populated):
    with pytest.raises(RegistryError, match="no run #9"):
        populated.get("9")
    with pytest.raises(RegistryError, match="too short"):
        populated.get("ab")
    with pytest.raises(RegistryError, match="no run with id prefix"):
        populated.get("ffff")


def test_get_names_candidates_when_ambiguous(tmp_path):
    registry = RunRegistry(tmp_path)
    # Two distinct manifests; ids are content hashes, so force the
    # ambiguity through a shared 0-length... instead use seq refs and
    # check the common-prefix case via the full id set.
    a, _ = registry.record(make_manifest(seed=1, fingerprint="b" * 32))
    b, _ = registry.record(make_manifest(seed=2, fingerprint="c" * 32))
    common = 0
    while common < len(a.id) and a.id[common] == b.id[common]:
        common += 1
    if common >= 4:  # pragma: no cover - hash-prefix dependent
        with pytest.raises(RegistryError, match="ambiguous"):
            registry.get(a.id[:common])
    else:
        assert registry.get(a.id[:4]) is a


def test_find_filters_config_and_measurements(populated):
    assert [r.manifest.seed for r in populated.find(seed=2)] == [2]
    assert [r.manifest.seed
            for r in populated.find(executor="threads")] == [2]
    assert [r.manifest.seed for r in populated.find(scale=0.1)] == [3]
    assert [r.manifest.seed
            for r in populated.find(fingerprint="b")] == [1]
    # Wall filters skip the run with no "total" stage (seed=3).
    assert [r.manifest.seed
            for r in populated.find(min_wall_s=2.0)] == [2]
    assert [r.manifest.seed
            for r in populated.find(max_wall_s=2.0)] == [1]
    # Hit-rate filters skip the uncached run (seed=2).
    assert [r.manifest.seed
            for r in populated.find(min_hit_rate=0.5)] == [1]
    assert [r.manifest.seed
            for r in populated.find(max_hit_rate=0.5)] == [3]


def test_by_fingerprint_groups_in_first_seen_order(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.record(make_manifest(seed=1, fingerprint="b" * 32))
    registry.record(make_manifest(seed=2, fingerprint="c" * 32))
    registry.record(make_manifest(
        seed=1, fingerprint="b" * 32,
        stage_seconds={"total": 2.0},
    ))
    groups = registry.by_fingerprint()
    assert list(groups) == ["b" * 32, "c" * 32]
    assert len(groups["b" * 32]) == 2


# ------------------------------------------------------------------- diff


def test_diff_reports_only_changes():
    a = make_manifest()
    b = make_manifest(
        seed=8,
        countries=["BR", "DE", "US"],
        summary={**a.summary, "ases": 15},
        stage_seconds={**a.stage_seconds, "total": 2.0},
        cache={"hits": 3, "misses": 0, "hit_rate": 1.0},
        versions={**a.versions, "numpy": "2.0.0"},
        tool_version="1.1.0",
        fingerprint="e" * 32,
    )
    diff = diff_manifests(a, b)
    assert not diff.same_inputs
    assert diff.config == {"seed": {"a": 7, "b": 8}}
    assert diff.countries_added == ("DE",)
    assert diff.countries_removed == ("FR",)
    assert diff.summary["ases"] == {"a": 12, "b": 15, "delta": 3}
    assert diff.stage_seconds["total"]["delta"] == 0.5
    assert diff.cache["hit_rate"]["b"] == 1.0
    assert diff.versions["numpy"] == {"a": "1.26.0", "b": "2.0.0"}
    assert diff.versions["tool_version"] == {"a": "1.0.0", "b": "1.1.0"}
    assert "config.seed" in diff.changed_fields
    assert "countries" in diff.changed_fields


def test_diff_of_identical_manifests_is_empty():
    diff = diff_manifests(make_manifest(), make_manifest())
    assert diff.same_inputs
    assert diff.changed_fields == ()


def test_diff_runs_and_to_dict(tmp_path):
    registry = RunRegistry(tmp_path)
    a, _ = registry.record(make_manifest(seed=1, fingerprint="b" * 32))
    b, _ = registry.record(make_manifest(seed=2, fingerprint="c" * 32))
    diff = diff_runs(a, b)
    payload = json.loads(json.dumps(diff.to_dict()))
    assert payload["same_inputs"] is False
    assert payload["config"]["seed"] == {"a": 1, "b": 2}


def test_diff_handles_missing_cache():
    diff = diff_manifests(make_manifest(), make_manifest(cache=None))
    assert set(diff.cache) == {"hits", "misses", "hit_rate"}
    assert diff.cache["hits"]["b"] is None
