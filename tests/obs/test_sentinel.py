"""The bench-regression sentinel: gates, tolerance, and trajectories."""

import json
import pathlib

import pytest

from repro.obs.sentinel import (
    GATES,
    SentinelError,
    bench_kind,
    check,
    evaluate,
    trajectory,
)
from repro.obs.registry import RunRegistry

from tests.obs.test_registry import make_manifest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
CHECKED_IN = sorted(REPO_ROOT.glob("BENCH_*.json"))


# -------------------------------------------------- the checked-in set


def test_checked_in_benchmarks_exist():
    # The sentinel replaces CI's per-bench heredocs; the checked-in
    # documents are its primary input and must stay present.
    kinds = {bench_kind(path) for path in CHECKED_IN}
    assert kinds == set(GATES)


def test_checked_in_benchmarks_pass_all_gates():
    checks = check(CHECKED_IN)
    assert len(checks) == len(CHECKED_IN)
    for bench in checks:
        assert bench.ok, [r.message for r in bench.failures]
        assert bench.failures == ()


def test_regressed_copy_fails_naming_the_culprit(tmp_path):
    source = REPO_ROOT / "BENCH_longitudinal.json"
    bench = json.loads(source.read_text())
    bench["speedup"] = 1.1  # below the 5.0 floor
    bad = tmp_path / "BENCH_longitudinal.json"
    bad.write_text(json.dumps(bench))

    (result,) = check([bad])
    assert not result.ok
    (failure,) = result.failures
    assert failure.metric == "speedup"
    assert "minimum 5.0" in failure.message


# ------------------------------------------------------------ gate kinds


def test_min_and_max_respect_tolerance():
    results = evaluate("pipeline", {"speedup": 1.7, "misses": 0, "hits": 5})
    assert [r.ok for r in results] == [False, True, True]
    # 15% slack moves the 2.0 floor to 1.7.
    relaxed = evaluate("pipeline", {"speedup": 1.7, "misses": 0, "hits": 5},
                       tolerance=0.15)
    assert all(r.ok for r in relaxed)


def test_exactness_gates_stay_exact_under_tolerance():
    bench = {"hit_rate": 0.8, "expected_hit_rate": 0.9, "speedup": 10,
             "byte_identical": {"serial": True}}
    (equals, _, _) = evaluate("longitudinal", bench, tolerance=0.5)
    assert not equals.ok
    assert "0.8" in equals.message and "0.9" in equals.message


def test_ordered_gate_flags_inverted_percentiles():
    bench = {"identical_to_serial": True, "rps": 100.0,
             "requests": 10,
             "latency": {"p50_ms": 5.0, "p95_ms": 2.0, "p99_ms": 9.0,
                         "count": 10}}
    by_metric = {r.metric: r for r in evaluate("serve", bench)}
    assert not by_metric["latency.p50_ms"].ok
    assert "p50_ms=5.0" in by_metric["latency.p50_ms"].message


def test_all_truthy_names_the_false_keys():
    bench = {"hit_rate": 1.0, "expected_hit_rate": 1.0, "speedup": 10,
             "byte_identical": {"serial": True, "threads": False,
                                "processes": False}}
    (_, _, flags) = evaluate("longitudinal", bench)
    assert not flags.ok
    assert "threads" in flags.message and "processes" in flags.message


def test_missing_metric_is_a_failure_not_a_crash():
    (speedup, misses, hits) = evaluate("pipeline", {"speedup": 3.0})
    assert speedup.ok
    assert not misses.ok and "metric missing" in misses.message
    assert not hits.ok


def test_positive_gate_rejects_non_numbers():
    bench = {"identical_to_serial": True, "rps": "fast",
             "requests": 1,
             "latency": {"p50_ms": 1, "p95_ms": 1, "p99_ms": 1, "count": 1}}
    by_metric = {r.metric: r for r in evaluate("serve", bench)}
    assert not by_metric["rps"].ok


# ------------------------------------------------------------ file intake


def test_bench_kind_rejects_foreign_names(tmp_path):
    with pytest.raises(SentinelError, match="not a BENCH"):
        bench_kind(tmp_path / "results.json")
    with pytest.raises(SentinelError, match="no gate table"):
        bench_kind(tmp_path / "BENCH_mystery.json")


def test_check_rejects_unreadable_json(tmp_path):
    bad = tmp_path / "BENCH_pipeline.json"
    bad.write_text("{truncated")
    with pytest.raises(SentinelError, match="unreadable bench JSON"):
        check([bad])


# ------------------------------------------------------------- trajectory


def _wall(seconds, *, seed_jitter):
    """A manifest differing only in its measured wall time."""
    return make_manifest(
        stage_seconds={"total": seconds},
        # recorded_unix is not part of the content address, so vary a
        # version string to keep each manifest's id distinct.
        versions={"repro": f"1.0.{seed_jitter}", "python": "3.11.0",
                  "numpy": "1.26.0", "implementation": "cpython"},
    )


def test_trajectory_flags_wall_time_inflation(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.record(_wall(1.0, seed_jitter=0))
    registry.record(_wall(1.1, seed_jitter=1))
    registry.record(_wall(2.0, seed_jitter=2))  # ~2x the 1.05 median

    (finding,) = [f for f in trajectory(registry) if f.metric == "wall_s"]
    assert finding.latest == 2.0
    assert finding.baseline == 1.05
    assert finding.ratio > 1.25


def test_trajectory_flags_hit_rate_drop(tmp_path):
    registry = RunRegistry(tmp_path)
    for jitter, rate in enumerate([0.9, 0.95, 0.2]):
        registry.record(make_manifest(
            cache={"hits": 1, "misses": 1, "hit_rate": rate},
            stage_seconds={},
            versions={"repro": f"1.0.{jitter}", "python": "3.11.0",
                      "numpy": "1.26.0", "implementation": "cpython"},
        ))
    (finding,) = trajectory(registry)
    assert finding.metric == "hit_rate"
    assert finding.latest == 0.2


def test_trajectory_needs_history(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.record(_wall(1.0, seed_jitter=0))
    registry.record(_wall(50.0, seed_jitter=1))  # only 1 predecessor
    assert trajectory(registry) == ()
    # Lowering min_history makes the same pair judgeable.
    assert trajectory(registry, min_history=1) != ()


def test_trajectory_skips_missing_telemetry(tmp_path):
    registry = RunRegistry(tmp_path)
    for jitter in range(3):
        registry.record(make_manifest(
            stage_seconds={}, cache=None,
            versions={"repro": f"1.0.{jitter}", "python": "3.11.0",
                      "numpy": "1.26.0", "implementation": "cpython"},
        ))
    assert trajectory(registry) == ()


def test_trajectory_within_tolerance_is_quiet(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.record(_wall(1.0, seed_jitter=0))
    registry.record(_wall(1.0, seed_jitter=1))
    registry.record(_wall(1.2, seed_jitter=2))  # +20% < default 25%
    assert trajectory(registry) == ()
