"""Prometheus text exposition: grammar, name mapping, histogram folding."""

import json
import re

from repro.obs import MetricsRegistry, render_prometheus

SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? -?[0-9.eE+-]+$"
)


def _serve_registry() -> MetricsRegistry:
    r = MetricsRegistry()
    r.count("serve.requests", 5)
    r.count("serve.requests.summary", 3)
    r.count("serve.requests.providers", 2)
    r.count("serve.errors", 1)
    r.count("serve.errors.unknown-country", 1)
    r.gauge("serve.inflight.peak", 4)
    r.observe("serve.latency_ms.summary", 1, 2)
    r.observe("serve.latency_ms.summary", 4, 1)
    r.count("serve.latency_sum_ms.summary", 5.25)
    return r


def _parse(body: str) -> dict[str, float]:
    """Exposition body -> {sample-line-without-value: value}."""
    samples = {}
    for line in body.splitlines():
        if line.startswith("#"):
            continue
        assert SAMPLE_LINE.match(line), f"malformed sample line: {line!r}"
        name, value = line.rsplit(" ", 1)
        samples[name] = float(value)
    return samples


def test_output_obeys_the_exposition_grammar():
    body = render_prometheus(_serve_registry())
    assert body.endswith("\n")
    families = set()
    for line in body.splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            families.add(line.split()[2])
        else:
            assert SAMPLE_LINE.match(line), line
    # Every family announced exactly once with both headers.
    assert body.count("# TYPE repro_serve_latency_ms ") == 1
    assert all(f"# HELP {name} " in body for name in families)


def test_serve_names_map_to_stable_series():
    samples = _parse(render_prometheus(_serve_registry()))
    assert samples["repro_serve_requests_total"] == 5
    assert samples[
        'repro_serve_endpoint_requests_total{endpoint="summary"}'] == 3
    assert samples[
        'repro_serve_endpoint_requests_total{endpoint="providers"}'] == 2
    assert samples["repro_serve_errors_total"] == 1
    assert samples[
        'repro_serve_error_code_total{code="unknown-country"}'] == 1
    assert samples["repro_serve_inflight_peak"] == 4


def test_latency_histogram_is_cumulative_with_sum_and_count():
    samples = _parse(render_prometheus(_serve_registry()))
    assert samples[
        'repro_serve_latency_ms_bucket{endpoint="summary",le="1"}'] == 2
    assert samples[
        'repro_serve_latency_ms_bucket{endpoint="summary",le="4"}'] == 3
    assert samples[
        'repro_serve_latency_ms_bucket{endpoint="summary",le="+Inf"}'] == 3
    assert samples['repro_serve_latency_ms_sum{endpoint="summary"}'] == 5.25
    assert samples['repro_serve_latency_ms_count{endpoint="summary"}'] == 3


def test_latency_sum_helper_counter_is_never_standalone():
    body = render_prometheus(_serve_registry())
    assert "latency_sum_ms" not in body


def test_rendering_a_json_snapshot_matches_the_live_registry():
    registry = _serve_registry()
    # The gateway renders from snapshot dicts whose histogram keys have
    # been stringified by JSON; both forms must agree byte for byte.
    snapshot = json.loads(json.dumps(registry.to_dict()))
    assert render_prometheus(snapshot) == render_prometheus(registry)


def test_generic_names_are_sanitized():
    r = MetricsRegistry()
    r.count("crawl.page-loads", 7)
    r.gauge("evolve.snapshot.0.hit_rate", 0.5)
    samples = _parse(render_prometheus(r))
    assert samples["repro_crawl_page_loads_total"] == 7
    assert samples["repro_evolve_snapshot_0_hit_rate"] == 0.5


def test_generic_numeric_histogram_and_categorical_buckets():
    r = MetricsRegistry()
    r.observe("depth", 0, 4)
    r.observe("depth", 2, 1)
    r.observe("size", "large", 6)
    samples = _parse(render_prometheus(r))
    assert samples['repro_depth_bucket{le="0"}'] == 4
    assert samples['repro_depth_bucket{le="2"}'] == 5
    assert samples['repro_depth_bucket{le="+Inf"}'] == 5
    assert samples["repro_depth_count"] == 5
    assert samples['repro_size_total{bucket="large"}'] == 6


def test_label_values_are_escaped():
    r = MetricsRegistry()
    r.count('serve.errors.bad"code\\with\nnewline', 1)
    body = render_prometheus(r)
    (line,) = [l for l in body.splitlines()
               if l.startswith("repro_serve_error_code_total")]
    assert '\\"' in line and "\\\\" in line and "\\n" in line
    assert "\n" not in line


def test_empty_registry_renders_empty():
    assert render_prometheus(MetricsRegistry()) == ""
