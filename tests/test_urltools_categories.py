"""Tests for URL utilities and the category enum."""

import pytest
from hypothesis import given, strategies as st

from repro.categories import CATEGORY_ORDER, HostingCategory
from repro.urltools import (
    hostname_of,
    labels_of,
    path_of,
    registrable_domain,
    same_registrable_domain,
)


def test_hostname_of_lowercases():
    assert hostname_of("https://WWW.Gov.BR/path?q=1") == "www.gov.br"


def test_hostname_of_rejects_relative():
    with pytest.raises(ValueError):
        hostname_of("/just/a/path")


def test_path_of():
    assert path_of("https://x.gov/br/abc") == "/br/abc"
    assert path_of("https://x.gov") == "/"


@pytest.mark.parametrize("hostname,expected", [
    ("www.ipc.gob.mx", "ipc.gob.mx"),
    ("cdn.example.com", "example.com"),
    ("a.b.c.example.org", "example.org"),
    ("www.prodecon.gob.mx", "prodecon.gob.mx"),
    ("nbso-brazil.com.br", "nbso-brazil.com.br"),
    ("energia-argentina.com.ar", "energia-argentina.com.ar"),
    ("static.health.gov.uk", "health.gov.uk"),
    ("localhost", "localhost"),
    ("example.com", "example.com"),
])
def test_registrable_domain(hostname, expected):
    assert registrable_domain(hostname) == expected


def test_same_registrable_domain():
    assert same_registrable_domain("img.youtube.com", "www.youtube.com")
    assert not same_registrable_domain("img.youtube.com", "youtube.org")


def test_labels_of_strips_root_dot():
    assert labels_of("www.Gov.BR.") == ("www", "gov", "br")


@given(st.from_regex(r"[a-z]{1,8}(\.[a-z]{2,8}){1,4}", fullmatch=True))
def test_registrable_domain_is_suffix(hostname):
    domain = registrable_domain(hostname)
    assert hostname.endswith(domain)
    assert registrable_domain(domain) == domain


def test_category_enum():
    assert len(HostingCategory) == 4
    assert len(CATEGORY_ORDER) == 4
    assert not HostingCategory.GOVT_SOE.is_third_party
    for category in (HostingCategory.P3_LOCAL, HostingCategory.P3_REGIONAL,
                     HostingCategory.P3_GLOBAL):
        assert category.is_third_party
    assert str(HostingCategory.GOVT_SOE) == "Govt&SOE"


def test_hostname_of_is_memoized():
    hostname_of.cache_clear()
    assert hostname_of("https://memo.gov.br/x") == "memo.gov.br"
    before = hostname_of.cache_info().hits
    assert hostname_of("https://memo.gov.br/x") == "memo.gov.br"
    assert hostname_of.cache_info().hits == before + 1


def test_hostname_of_errors_are_not_cached():
    with pytest.raises(ValueError):
        hostname_of("/relative/path")
    with pytest.raises(ValueError):
        hostname_of("/relative/path")
