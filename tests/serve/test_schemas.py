"""Request-schema validation: structurally bad input never reaches the
service, and every rejection carries a stable code + offending field."""

from __future__ import annotations

import pytest

from repro.serve import RequestError
from repro.serve.schemas import (
    QUERY_ENDPOINTS,
    CategoryMixRequest,
    CrossborderRequest,
    ProvidersRequest,
    ReportRequest,
    SummaryRequest,
)


def _error(schema, payload) -> RequestError:
    with pytest.raises(RequestError) as excinfo:
        schema.from_mapping(payload)
    return excinfo.value


def test_summary_accepts_empty_only():
    assert SummaryRequest.from_mapping({}) == SummaryRequest()
    error = _error(SummaryRequest, {"extra": 1})
    assert error.code == "unknown-field"
    assert error.field == "extra"
    assert error.status == 400


def test_category_mix_requires_country():
    error = _error(CategoryMixRequest, {})
    assert (error.code, error.field) == ("missing-field", "country")


def test_category_mix_rejects_bad_weighting():
    error = _error(CategoryMixRequest, {"country": "BR", "weighting": "mass"})
    assert (error.code, error.field) == ("bad-choice", "weighting")
    assert "urls" in error.message and "bytes" in error.message


def test_category_mix_rejects_non_string_country():
    error = _error(CategoryMixRequest, {"country": 7})
    assert (error.code, error.field) == ("bad-type", "country")


def test_crossborder_sources_accepts_list_and_csv():
    from_list = CrossborderRequest.from_mapping({"sources": ["BR", "US"]})
    from_csv = CrossborderRequest.from_mapping({"sources": "BR,US"})
    assert from_list == from_csv
    assert from_list.sources == ("BR", "US")
    assert CrossborderRequest.from_mapping({}).sources == ()


def test_crossborder_rejects_bad_basis_and_types():
    error = _error(CrossborderRequest, {"basis": "astral"})
    assert (error.code, error.field) == ("bad-choice", "basis")
    error = _error(CrossborderRequest, {"sources": [1, 2]})
    assert (error.code, error.field) == ("bad-type", "sources")


def test_providers_top_coerces_and_bounds():
    assert ProvidersRequest.from_mapping({"top": "5"}).top == 5
    assert ProvidersRequest.from_mapping({}).top == 10
    assert _error(ProvidersRequest, {"top": 0}).code == "out-of-range"
    assert _error(ProvidersRequest, {"top": -3}).code == "out-of-range"
    assert _error(ProvidersRequest, {"top": 10**6}).code == "out-of-range"
    assert _error(ProvidersRequest, {"top": 1.5}).code == "bad-type"
    assert _error(ProvidersRequest, {"top": True}).code == "bad-type"


def test_report_section_is_validated():
    assert ReportRequest.from_mapping({"section": "full"}).section == "full"
    error = _error(ReportRequest, {"section": "appendix"})
    assert (error.code, error.field) == ("bad-choice", "section")
    assert "summary" in error.message


def test_every_endpoint_round_trips_a_valid_request():
    valid = {
        "summary": {},
        "categories": {"country": "BR"},
        "crossborder": {"sources": "BR"},
        "providers": {"top": 3},
        "report": {"section": "summary"},
        "trends": {"country": "BR"},
    }
    assert set(valid) == set(QUERY_ENDPOINTS)
    for endpoint, payload in valid.items():
        QUERY_ENDPOINTS[endpoint].from_mapping(payload)


def test_request_error_to_dict_shape():
    error = _error(ReportRequest, {"section": "nope"})
    payload = error.to_dict()
    assert payload == {
        "code": "bad-choice",
        "message": error.message,
        "field": "section",
    }
