"""Serve metrics clock discipline and the shared thread-safe registry."""

import inspect
import threading

import pytest

import repro.serve.metrics as metrics_module
from repro.obs import MetricsRegistry, ThreadSafeMetricsRegistry
from repro.serve.metrics import ServiceMetrics, latency_bucket


# ------------------------------------------------------ monotonic clock


def test_module_never_reads_the_wall_clock():
    # Durations must be differences of monotonic readings; a wall-clock
    # read creeping back in is exactly the regression this guards.
    # (AST-level so docstrings may still *mention* the rule.)
    import ast

    source = inspect.getsource(metrics_module)
    wall_reads = [
        node for node in ast.walk(ast.parse(source))
        if isinstance(node, ast.Attribute) and node.attr == "time"
        and isinstance(node.value, ast.Name) and node.value.id == "time"
    ]
    assert wall_reads == []
    assert "perf_counter_ns" in source


def test_backwards_wall_clock_cannot_corrupt_latency(monkeypatch):
    # An NTP step or DST shift moves time.time() backwards; latency
    # accounting must not notice.
    wall = iter([1_000_000.0, 999_000.0, 998_000.0, 997_000.0])
    monkeypatch.setattr(metrics_module.time, "time",
                        lambda: next(wall), raising=True)
    tracker = ServiceMetrics()
    with tracker.track("summary"):
        pass
    snapshot = tracker.snapshot()
    assert snapshot["counters"]["serve.requests"] == 1
    assert snapshot["counters"]["serve.latency_sum_ms.summary"] >= 0
    buckets = snapshot["histograms"]["serve.latency_ms.summary"]
    assert sum(buckets.values()) == 1
    assert all(int(bound) >= 1 for bound in buckets)


def test_frozen_monotonic_clock_records_zero_not_negative(monkeypatch):
    readings = iter([5_000_000, 5_000_000])  # start == end
    monkeypatch.setattr(metrics_module.time, "perf_counter_ns",
                        lambda: next(readings), raising=True)
    tracker = ServiceMetrics()
    with tracker.track("summary"):
        pass
    assert tracker.snapshot()["counters"][
        "serve.latency_sum_ms.summary"] == 0


# ----------------------------------------------- the shared registry


def test_service_metrics_uses_the_shared_thread_safe_registry():
    tracker = ServiceMetrics()
    assert isinstance(tracker.registry, ThreadSafeMetricsRegistry)
    # No wrapper re-implementing mutators behind a second lock: the
    # tracker's only private lock guards the non-monoid inflight count.
    private_locks = [name for name, value in vars(tracker).items()
                     if "lock" in name.lower()]
    assert private_locks == ["_inflight_lock"]


def test_thread_safe_registry_is_the_same_monoid():
    safe = ThreadSafeMetricsRegistry()
    plain = MetricsRegistry()
    for registry in (safe, plain):
        registry.count("serve.requests", 3)
        registry.gauge("serve.inflight.peak", 2)
        registry.observe("serve.latency_ms.summary", 4, 5)
    assert safe.to_dict() == plain.to_dict()
    assert safe == plain


def test_thread_safe_merge_in_does_not_deadlock():
    # merge_in holds the registry lock while dispatching back through
    # the overridden mutators; a non-reentrant lock would hang here.
    safe = ThreadSafeMetricsRegistry()
    other = MetricsRegistry()
    other.count("serve.requests", 2)
    other.gauge("serve.inflight.peak", 9)
    other.observe("serve.latency_ms.summary", 1, 1)
    done = threading.Event()

    def merge():
        safe.merge_in(other)
        done.set()

    thread = threading.Thread(target=merge, daemon=True)
    thread.start()
    assert done.wait(timeout=10), "merge_in deadlocked"
    assert safe.counter("serve.requests") == 2


def test_concurrent_tracking_is_exact():
    tracker = ServiceMetrics()

    def hammer():
        for _ in range(100):
            with tracker.track("summary"):
                pass

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snapshot = tracker.snapshot()
    assert snapshot["counters"]["serve.requests"] == 800
    assert snapshot["counters"]["serve.requests.summary"] == 800
    assert sum(snapshot["histograms"][
        "serve.latency_ms.summary"].values()) == 800
    assert tracker.inflight() == 0
    assert snapshot["gauges"]["serve.inflight.peak"] >= 1


def test_errors_are_counted_and_reraised():
    tracker = ServiceMetrics()

    class Boom(Exception):
        code = "boom"

    with pytest.raises(Boom):
        with tracker.track("summary"):
            raise Boom()
    snapshot = tracker.snapshot()
    assert snapshot["counters"]["serve.errors"] == 1
    assert snapshot["counters"]["serve.errors.boom"] == 1
    # The failed query is still latency-accounted.
    assert snapshot["counters"]["serve.requests"] == 1


def test_latency_bucket_powers_of_two():
    assert latency_bucket(0.3) == 1
    assert latency_bucket(1.0) == 1
    assert latency_bucket(1.1) == 2
    assert latency_bucket(9.0) == 16
