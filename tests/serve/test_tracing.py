"""Request-scoped serve tracing: byte-identity, the on-disk ring, and
the slow-query log."""

import json
import threading
import urllib.request

import pytest

from repro.obs import Tracer
from repro.serve import RequestTraceLog, create_server
from repro.serve.tracing import SLOW_LOG_NAME

from tests.serve.conftest import http_get


@pytest.fixture()
def traced_server(service, tmp_path):
    trace_log = RequestTraceLog(tmp_path / "traces", ring_size=4,
                                slow_ms=10_000.0)
    server = create_server(service, workers=4, trace_log=trace_log)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, trace_log
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _raw_get(base_url: str, path: str) -> bytes:
    with urllib.request.urlopen(base_url + path) as response:
        return response.read()


def _url(server) -> str:
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


# ----------------------------------------------------- zero perturbation


def test_traced_responses_are_byte_identical(service, traced_server,
                                             http_server):
    """The tentpole contract: tracing must not change a single byte."""
    traced, _ = traced_server
    paths = [
        "/v1/summary",
        "/v1/categories?country=BR&weighting=bytes",
        "/v1/providers?top=5",
        "/v1/report?section=summary",
        "/v1/trends",
    ]
    for path in paths:
        plain = _raw_get(_url(http_server), path)
        for _ in range(2):  # cold memo and warm memo
            assert _raw_get(_url(traced), path) == plain


def test_service_level_tracing_preserves_results(service):
    untraced = service.query("summary", {})
    traced = service.query("summary", {}, tracer=Tracer())
    assert traced == untraced


# ------------------------------------------------------- trace contents


def test_trace_documents_cover_the_request_phases(service, tmp_path):
    log = RequestTraceLog(tmp_path, ring_size=8)
    tracer = Tracer()
    service.query("providers", {"top": "3"}, tracer=tracer)
    log.record("providers", payload={"top": "3"}, tracer=tracer,
               duration_ms=1.25, status=200)

    (document,) = log.traces()
    assert document["format"] == 1
    assert document["seq"] == 0
    assert document["endpoint"] == "providers"
    assert document["status"] == 200
    assert document["error"] is None
    (request_span,) = document["trace"]["spans"]
    assert request_span["name"] == "serve.request"
    assert request_span["tags"]["endpoint"] == "providers"
    assert [child["name"] for child in request_span["children"]] == \
        ["parse", "dispatch", "render"]


def test_dispatch_span_tags_memo_activity(service):
    # trends memoizes at the service level: the first traced call
    # builds the table, later ones hit it.
    service._trend_report = None  # reset the memo for a cold build
    cold = Tracer()
    service.query("trends", {}, tracer=cold)
    warm = Tracer()
    service.query("trends", {}, tracer=warm)

    def dispatch_tags(tracer):
        return tracer.find("dispatch").tags

    assert "trend_report" in dispatch_tags(cold)["memo_builds"]
    assert dispatch_tags(warm)["memo_builds"] == []
    assert dispatch_tags(warm)["memo_hits"] >= 1


def _wait_for(log, count, timeout_s=5.0):
    # Traces are written after the response bytes go out, so the
    # client can get its answer a beat before the record lands.
    import time

    deadline = time.monotonic() + timeout_s
    while log.recorded < count and time.monotonic() < deadline:
        time.sleep(0.01)
    return log.recorded


def test_gateway_records_every_request(traced_server):
    server, log = traced_server
    for _ in range(3):
        _raw_get(_url(server), "/v1/summary")
    assert _wait_for(log, 3) == 3
    assert all(doc["endpoint"] == "summary" for doc in log.traces())


def test_gateway_traces_errors_with_status(traced_server):
    server, log = traced_server
    status, _ = http_get(f"{_url(server)}/v1/categories?country=ZZ")
    assert status == 404
    _wait_for(log, 1)
    document = log.traces()[-1]
    assert document["status"] == 404
    assert document["error"]["code"] == "unknown-country"


# ------------------------------------------------------------- the ring


def test_ring_reuses_slots(tmp_path):
    log = RequestTraceLog(tmp_path, ring_size=3)
    for i in range(8):
        log.record(f"ep{i}", payload={}, tracer=Tracer(),
                   duration_ms=1.0, status=200)
    slots = sorted(p.name for p in tmp_path.glob("request-*.json"))
    assert slots == ["request-0000.json", "request-0001.json",
                     "request-0002.json"]
    # The ring holds the newest 3 documents, oldest first.
    assert [doc["seq"] for doc in log.traces()] == [5, 6, 7]
    assert log.recorded == 8


def test_ring_size_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="ring_size"):
        RequestTraceLog(tmp_path, ring_size=0)


# ----------------------------------------------------------- slow log


def test_slow_requests_are_appended_to_the_slow_log(tmp_path):
    log = RequestTraceLog(tmp_path, ring_size=2, slow_ms=5.0)
    log.record("fast", payload={}, tracer=Tracer(),
               duration_ms=1.0, status=200)
    log.record("slow", payload={"n": 1}, tracer=Tracer(),
               duration_ms=80.0, status=200)
    log.record("slower", payload={}, tracer=Tracer(),
               duration_ms=90.0, status=500)

    entries = log.slow_queries()
    assert [e["endpoint"] for e in entries] == ["slow", "slower"]
    assert entries[0] == {"seq": 1, "endpoint": "slow", "payload": {"n": 1},
                          "status": 200, "duration_ms": 80.0,
                          "slot": "request-0001.json"}
    # Append-only: the slow log survives ring-slot reuse.
    raw = (tmp_path / SLOW_LOG_NAME).read_text()
    assert len(raw.splitlines()) == 2
    assert all(json.loads(line) for line in raw.splitlines())


def test_no_slow_log_file_until_something_is_slow(tmp_path):
    log = RequestTraceLog(tmp_path, ring_size=2, slow_ms=1000.0)
    log.record("fast", payload={}, tracer=Tracer(),
               duration_ms=1.0, status=200)
    assert not (tmp_path / SLOW_LOG_NAME).exists()
    assert log.slow_queries() == []
