"""Concurrency soak: many threads, mixed query types, answers
bit-identical to a serial pass over the same warm service."""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.serve import DatasetService

THREADS = 8
ROUNDS = 5

MIXED_QUERIES = [
    ("summary", {}),
    ("categories", {"country": "BR"}),
    ("categories", {"country": "US", "weighting": "bytes"}),
    ("crossborder", {"sources": "BR,FR"}),
    ("crossborder", {"basis": "registration"}),
    ("providers", {"top": 5}),
    ("report", {"section": "summary"}),
    ("report", {"section": "full"}),
]


def _canonical(result: dict) -> str:
    return json.dumps(result, sort_keys=True)


def test_soak_matches_serial(tiny_dataset):
    # A dedicated service so the soak starts from a cold index: the
    # first wave of threads races the index build and every memoized
    # table, which is exactly the historical failure mode.  The serial
    # reference answers come from a *separate* service — answering them
    # on the soaked one would warm every memo and let fully-memoized
    # queries finish too fast to ever overlap.
    import dataclasses

    reference = DatasetService(dataclasses.replace(tiny_dataset))
    serial = [_canonical(reference.query(endpoint, payload))
              for endpoint, payload in MIXED_QUERIES]
    service = DatasetService(dataclasses.replace(tiny_dataset))

    barrier = threading.Barrier(THREADS)

    def worker(worker_id: int):
        barrier.wait()
        answers = []
        for round_number in range(ROUNDS):
            # Stagger starting offsets so different threads hit
            # different endpoints at the same instant.
            for offset in range(len(MIXED_QUERIES)):
                position = (worker_id + round_number + offset) \
                    % len(MIXED_QUERIES)
                endpoint, payload = MIXED_QUERIES[position]
                answers.append(
                    (position, _canonical(service.query(endpoint, payload)))
                )
        return answers

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        all_answers = list(pool.map(worker, range(THREADS)))

    for answers in all_answers:
        for position, answer in answers:
            assert answer == serial[position]

    snapshot = service.metrics_snapshot()
    expected = THREADS * ROUNDS * len(MIXED_QUERIES)
    assert snapshot["counters"]["serve.requests"] == expected
    # Whether the soak *observably* overlapped is scheduler-dependent
    # (memoized queries can finish within one GIL slice);
    # test_inflight_peak_tracks_concurrency asserts the peak gauge
    # deterministically.


def test_inflight_peak_tracks_concurrency(tiny_dataset):
    """Two queries held inside the service at once must register as an
    inflight peak of 2 — synchronized with a barrier, not timing."""
    import dataclasses

    service = DatasetService(dataclasses.replace(tiny_dataset))
    inside = threading.Barrier(2, timeout=10)
    original = service._dispatch

    def stalling(request):
        inside.wait()  # both workers are now inside metrics.track
        return original(request)

    service._dispatch = stalling
    with ThreadPoolExecutor(max_workers=2) as pool:
        results = list(pool.map(lambda _: service.query("summary", {}),
                                range(2)))
    assert results[0] == results[1]
    assert service.metrics_snapshot()["gauges"]["serve.inflight.peak"] >= 2


def test_gateway_soak_matches_serial(base_url):
    from .conftest import http_get

    urls = [
        f"{base_url}/v1/summary",
        f"{base_url}/v1/categories?country=FR",
        f"{base_url}/v1/crossborder?sources=US",
        f"{base_url}/v1/providers?top=3",
        f"{base_url}/v1/report?section=global",
    ]
    serial = [_canonical(http_get(url)[1]) for url in urls]

    def worker(worker_id: int):
        results = []
        for offset in range(len(urls) * 2):
            position = (worker_id + offset) % len(urls)
            status, body = http_get(urls[position])
            assert status == 200
            results.append((position, _canonical(body)))
        return results

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        for results in pool.map(worker, range(THREADS)):
            for position, body in results:
                assert body == serial[position]
