"""HTTP gateway behavior: JSON endpoints, structured 4xx errors, and
byte-equality between what travels over the wire and the service."""

from __future__ import annotations

import json
import urllib.request

from repro.reporting import render_report_section

from .conftest import http_get, http_post


def test_healthz(base_url, tiny_dataset):
    status, body = http_get(f"{base_url}/healthz")
    assert status == 200
    assert body["status"] == "ok"
    assert body["countries"] == len(tiny_dataset.countries)
    assert body["records"] > 0


def test_metrics_endpoint_reflects_traffic(base_url):
    before = http_get(f"{base_url}/metrics")[1]
    http_get(f"{base_url}/v1/summary")
    status, after = http_get(f"{base_url}/metrics")
    assert status == 200
    assert after["counters"]["serve.requests.summary"] == \
        before["counters"].get("serve.requests.summary", 0) + 1


def test_get_and_post_answer_identically(base_url):
    get_status, get_body = http_get(
        f"{base_url}/v1/categories?country=BR&weighting=bytes"
    )
    post_status, post_body = http_post(
        f"{base_url}/v1/categories", {"country": "BR", "weighting": "bytes"}
    )
    assert get_status == post_status == 200
    assert get_body == post_body


def test_report_fragment_matches_batch_bytes(base_url, tiny_dataset):
    status, body = http_get(f"{base_url}/v1/report?section=providers")
    assert status == 200
    assert body["text"] == render_report_section(tiny_dataset, "providers")


def test_unknown_country_is_404_with_error_object(base_url):
    status, body = http_get(f"{base_url}/v1/categories?country=ZZ")
    assert status == 404
    assert body["error"]["code"] == "unknown-country"
    assert body["error"]["field"] == "country"


def test_bad_section_is_400_with_error_object(base_url):
    status, body = http_get(f"{base_url}/v1/report?section=appendix")
    assert status == 400
    assert body["error"]["code"] == "bad-choice"
    assert body["error"]["field"] == "section"


def test_unknown_field_is_400(base_url):
    status, body = http_post(f"{base_url}/v1/summary", {"surprise": 1})
    assert status == 400
    assert body["error"]["code"] == "unknown-field"


def test_malformed_json_body_is_400(base_url):
    status, body = http_post(f"{base_url}/v1/summary", b"{not json")
    assert status == 400
    assert body["error"]["code"] == "bad-json"


def test_non_object_json_body_is_400(base_url):
    status, body = http_post(f"{base_url}/v1/summary", b"[1, 2]")
    assert status == 400
    assert body["error"]["code"] == "bad-type"


def test_unknown_endpoint_is_404(base_url):
    status, body = http_get(f"{base_url}/v1/everything")
    assert status == 404
    assert body["error"]["code"] == "unknown-endpoint"


def test_unknown_path_is_404(base_url):
    status, body = http_get(f"{base_url}/nope")
    assert status == 404
    assert body["error"]["code"] == "not-found"


def test_keepalive_serves_sequential_requests(base_url):
    # One opener reusing the stack; mainly asserts Content-Length is
    # right (a wrong length wedges or truncates the second response).
    for _ in range(3):
        with urllib.request.urlopen(f"{base_url}/v1/summary") as response:
            payload = json.load(response)
            assert "summary" in payload
