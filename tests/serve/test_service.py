"""Service/batch equivalence: every answer must equal the analysis
function or renderer the batch path would have used -- for in-memory,
jsonl-loaded and store-backed datasets, faulted runs included."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.analysis import flows, global_provider_footprints
from repro.analysis.engine import ensure_index
from repro.analysis.hosting import fractions_of_counts
from repro.reporting import render_paper_report, render_report_section
from repro.reporting.sections import SECTION_NAMES
from repro.serve import DatasetService, RequestError


def test_summary_equals_index_summary(service, tiny_dataset):
    result = service.query("summary", {})
    expected = dataclasses.asdict(ensure_index(tiny_dataset).summary())
    assert result == {"summary": expected}


@pytest.mark.parametrize("weighting", ["urls", "bytes"])
def test_category_mix_equals_analysis(service, tiny_dataset, weighting):
    index = ensure_index(tiny_dataset)
    url_counts, byte_sums = index.category_counts()["BR"]
    tallies = byte_sums if weighting == "bytes" else url_counts
    expected = {str(category): fraction
                for category, fraction in fractions_of_counts(tallies).items()}
    result = service.query("categories",
                           {"country": "br", "weighting": weighting})
    assert result["country"] == "BR"
    assert result["mix"] == expected
    assert result["url_count"] == sum(url_counts)
    assert result["byte_count"] == sum(byte_sums)


@pytest.mark.parametrize("basis", ["server", "registration"])
def test_crossborder_equals_flows(service, tiny_dataset, basis):
    result = service.query("crossborder", {"sources": "BR,FR",
                                           "basis": basis})
    expected = [
        {"source": flow.source, "destination": flow.destination,
         "url_count": flow.url_count, "byte_count": flow.byte_count}
        for flow in flows(tiny_dataset, basis)
        if flow.source in {"BR", "FR"}
    ]
    assert result["flows"] == expected


def test_crossborder_empty_sources_means_all(service, tiny_dataset):
    result = service.query("crossborder", {})
    assert len(result["flows"]) == len(flows(tiny_dataset, "server"))


def test_providers_equals_footprints(service, tiny_dataset):
    result = service.query("providers", {"top": 4})
    expected = [
        {"asn": fp.asn, "name": fp.name,
         "country_count": fp.country_count,
         "countries": list(fp.countries)}
        for fp in global_provider_footprints(tiny_dataset)[:4]
    ]
    assert result["providers"] == expected


@pytest.mark.parametrize("section", SECTION_NAMES)
def test_report_fragments_equal_batch_renderer(service, tiny_dataset,
                                               section):
    result = service.query("report", {"section": section})
    assert result["text"] == render_report_section(tiny_dataset, section)


def test_full_report_equals_render_paper_report(service, tiny_dataset):
    result = service.query("report", {"section": "full"})
    assert result["text"] == render_paper_report(tiny_dataset)


def test_unknown_country_is_structured_404(service):
    with pytest.raises(RequestError) as excinfo:
        service.query("categories", {"country": "XX"})
    error = excinfo.value
    assert (error.code, error.field, error.status) == \
        ("unknown-country", "country", 404)
    with pytest.raises(RequestError) as excinfo:
        service.query("crossborder", {"sources": "BR,XX"})
    assert excinfo.value.field == "sources"


def test_unknown_endpoint_is_structured_404(service):
    with pytest.raises(RequestError) as excinfo:
        service.query("everything", {})
    assert excinfo.value.code == "unknown-endpoint"
    assert excinfo.value.status == 404


def _canonical_answers(service: DatasetService) -> str:
    queries = [
        ("summary", {}),
        ("categories", {"country": "BR"}),
        ("crossborder", {"sources": "BR,US"}),
        ("providers", {"top": 5}),
        ("report", {"section": "full"}),
    ]
    return json.dumps([service.query(e, p) for e, p in queries],
                      sort_keys=True)


def test_jsonl_and_store_services_answer_identically(tiny_dataset,
                                                     tiny_jsonl,
                                                     serve_store_dir):
    """Same dataset, three load paths, byte-identical responses."""
    in_memory = _canonical_answers(DatasetService(tiny_dataset))
    with DatasetService.open(tiny_jsonl) as from_jsonl:
        assert _canonical_answers(from_jsonl) == in_memory
    with DatasetService.open(serve_store_dir) as from_store:
        assert _canonical_answers(from_store) == in_memory


def test_faulted_dataset_serves_consistently(faulted_dataset):
    assert faulted_dataset.faults.countries  # the run really faulted
    service = DatasetService(faulted_dataset)
    result = service.query("report", {"section": "full"})
    assert result["text"] == render_paper_report(faulted_dataset)
    summary = service.query("summary", {})["summary"]
    assert summary == dataclasses.asdict(
        ensure_index(faulted_dataset).summary()
    )


def test_service_tracks_metrics(tiny_dataset):
    service = DatasetService(tiny_dataset)
    service.query("summary", {})
    with pytest.raises(RequestError):
        service.query("categories", {"country": "XX"})
    snapshot = service.metrics_snapshot()
    assert snapshot["counters"]["serve.requests"] == 2
    assert snapshot["counters"]["serve.requests.summary"] == 1
    assert snapshot["counters"]["serve.errors.unknown-country"] == 1
    assert snapshot["gauges"]["serve.inflight.peak"] >= 1
    assert any(name.startswith("serve.latency_ms.")
               for name in snapshot["histograms"])
