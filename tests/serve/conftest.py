"""Serve-layer fixtures: one warm service + one live gateway.

The service wraps the shared session ``tiny_dataset`` (BR/US/FR), so
index build cost is paid once; on-disk forms (jsonl, store) are
written once per session for the load-path equivalence tests.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.io import save_dataset
from repro.serve import DatasetService, create_server
from repro.store import write_store


@pytest.fixture(scope="session")
def tiny_jsonl(tmp_path_factory, tiny_dataset):
    path = tmp_path_factory.mktemp("serve") / "tiny.jsonl"
    save_dataset(tiny_dataset, path)
    return path


@pytest.fixture(scope="session")
def serve_store_dir(tmp_path_factory, tiny_dataset):
    path = tmp_path_factory.mktemp("serve") / "tiny.store"
    write_store(tiny_dataset, path)
    return path


@pytest.fixture(scope="session")
def faulted_dataset():
    """A small faulted run: degraded records and a fault report."""
    world = SyntheticWorld.generate(WorldConfig(
        seed=11, scale=0.05, countries=("BR", "US"), fault_rate=0.3,
    ))
    return Pipeline(world).run()


@pytest.fixture(scope="session")
def service(tiny_dataset) -> DatasetService:
    """A warm service over the shared in-memory dataset."""
    return DatasetService(tiny_dataset)


@pytest.fixture()
def http_server(service):
    server = create_server(service, workers=4)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    # server_close, not close(): the session-scoped service stays warm.
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture()
def base_url(http_server) -> str:
    host, port = http_server.server_address[:2]
    return f"http://{host}:{port}"


def http_get(url: str):
    """(status, parsed JSON body) of a GET, errors included."""
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


def http_post(url: str, payload) -> tuple:
    """(status, parsed JSON body) of a POST, errors included."""
    data = payload if isinstance(payload, bytes) else \
        json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)
