"""The trends endpoint (with and without history) and the memoized
crossborder flow tables that keep its sibling endpoint's tail flat."""

from __future__ import annotations

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.analysis.engine import ensure_index
from repro.analysis.longitudinal import compute_trends
from repro.serve import DatasetService, RequestError

from .conftest import http_get


@pytest.fixture(scope="module")
def history_service(tiny_dataset):
    """tiny_dataset preceded by two earlier snapshots of BR/US/FR."""
    earlier = [
        Pipeline(SyntheticWorld.generate(WorldConfig(
            seed=seed, scale=0.05, countries=("BR", "US", "FR"),
        ))).run()
        for seed in (5, 6)
    ]
    service = DatasetService(tiny_dataset, history=earlier)
    yield service
    service.close()


# ------------------------------------------------------------- trends

def test_trends_without_history_is_single_snapshot(service, tiny_dataset):
    result = service.query("trends", {})
    assert result["snapshot_count"] == 1
    expected = compute_trends([tiny_dataset]).to_dict()
    assert result["report"] == expected


def test_trends_with_history_equals_compute_trends(history_service,
                                                   tiny_dataset):
    result = history_service.query("trends", {})
    assert result["snapshot_count"] == 3
    report = result["report"]
    assert report["labels"] == ["T+0", "T+1", "T+2"]
    assert len(report["points"]) == 3
    assert set(report["hhi_series"]) == {"BR", "US", "FR"}
    # The last point is the served dataset itself.
    solo = compute_trends([tiny_dataset]).to_dict()
    assert report["points"][-1]["mean_hhi"] == \
        solo["points"][0]["mean_hhi"]


def test_trends_country_filter(history_service):
    result = history_service.query("trends", {"country": "br"})
    assert result["country"] == "BR"
    report = result["report"]
    assert set(report["hhi_series"]) == {"BR"}
    assert set(report["third_party_series"]) == {"BR"}
    assert all(m["country"] == "BR" for m in report["migrations"])
    assert len(report["hhi_series"]["BR"]) == 3


def test_trends_unknown_country_404(history_service):
    with pytest.raises(RequestError) as excinfo:
        history_service.query("trends", {"country": "XX"})
    assert excinfo.value.status == 404
    assert excinfo.value.code == "unknown-country"


def test_trends_memoized(history_service):
    assert history_service._trends() is history_service._trends()


def test_healthz_reports_snapshots(history_service, service):
    assert history_service.healthz()["snapshots"] == 3
    assert "snapshots" not in service.healthz()


def test_trends_over_http(base_url):
    status, body = http_get(f"{base_url}/v1/trends")
    assert status == 200
    assert body["snapshot_count"] == 1
    assert "points" in body["report"]


# ----------------------------------------- crossborder flow memoization

@pytest.mark.parametrize("basis", ["server", "registration"])
def test_flow_table_matches_crossborder_counts(tiny_dataset, basis):
    index = ensure_index(tiny_dataset)
    table = index.crossborder_flow_table(basis)
    counts = index.crossborder_counts(basis)
    assert len(table) == len(counts)
    assert list(table) == sorted(
        (source, destination, urls, byte_count)
        for (source, destination), (urls, byte_count) in counts.items()
    )


def test_flow_table_memoized(tiny_dataset):
    index = ensure_index(tiny_dataset)
    assert index.crossborder_flow_table("server") is \
        index.crossborder_flow_table("server")
    assert index.crossborder_flow_slices("server") is \
        index.crossborder_flow_slices("server")


def test_flow_slices_partition_table(tiny_dataset):
    index = ensure_index(tiny_dataset)
    table = index.crossborder_flow_table("server")
    slices = index.crossborder_flow_slices("server")
    covered = []
    for source in sorted(slices):
        start, stop = slices[source]
        part = table[start:stop]
        assert part, "every sliced source has at least one flow"
        assert all(entry[0] == source for entry in part)
        covered.extend(part)
    assert covered == list(table)


def test_sliced_crossborder_equals_filtered(service, tiny_dataset):
    """The service's slice-concatenation fast path must answer exactly
    what a linear filter over all flows would."""
    everything = service.query("crossborder", {"basis": "server"})
    for subset in (("BR",), ("BR", "FR"), ("FR", "US", "BR")):
        fast = service.query("crossborder",
                             {"sources": ",".join(subset),
                              "basis": "server"})
        expected = [flow for flow in everything["flows"]
                    if flow["source"] in subset]
        assert fast["flows"] == expected
