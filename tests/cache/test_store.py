"""ScanCache store semantics: round-trips, recovery, stats, maintenance."""

from __future__ import annotations

import json
import pickle

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.cache import CACHE_FORMAT_VERSION, ScanCache
from repro.exec.partials import CountryPartial


@pytest.fixture(scope="module")
def cache_world() -> SyntheticWorld:
    return SyntheticWorld.generate(
        WorldConfig(seed=11, scale=0.05, countries=("BR", "US"))
    )


@pytest.fixture()
def populated(cache_world, tmp_path):
    """A cache holding BR's partial, plus the pipeline and key."""
    pipeline = Pipeline(cache_world)
    cache = ScanCache(tmp_path / "cache")
    key = cache.key_for(pipeline, "BR")
    partial = pipeline.scan_partial("BR")
    cache.store(key, partial, scan_s=1.5)
    return cache, pipeline, key, partial


def _entry_path(cache: ScanCache, key: str):
    files = list(cache.cache_dir.glob(f"*/{key}.partial"))
    assert len(files) == 1
    return files[0]


def test_round_trip(populated):
    cache, _, key, partial = populated
    loaded = cache.load(key, "BR")
    assert loaded == partial
    assert cache.stats.hits == 1
    assert cache.stats.time_saved_s == pytest.approx(1.5)


def test_bulk_is_deferred_until_touched(populated):
    cache, _, key, partial = populated
    loaded = cache.load(key, "BR")
    assert loaded._hosts is None  # bulk still raw bytes
    assert loaded.hosts == partial.hosts  # materializes on demand
    assert loaded.urls == partial.urls
    assert loaded._load_bulk is None


def test_absent_entry_is_a_miss(populated):
    cache, _, _, _ = populated
    assert cache.load("0" * 32, "BR") is None
    assert cache.stats.misses == 1
    assert cache.stats.evicted == 0


def test_truncated_entry_evicted_and_recovered(populated):
    cache, _, key, _ = populated
    path = _entry_path(cache, key)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    assert cache.load(key, "BR") is None
    assert cache.stats.evicted == 1
    assert not path.exists()


def test_corrupt_payload_evicted(populated):
    cache, _, key, _ = populated
    path = _entry_path(cache, key)
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF  # flip a payload byte; digest check must catch it
    path.write_bytes(bytes(blob))
    assert cache.load(key, "BR") is None
    assert cache.stats.evicted == 1
    assert not path.exists()


def test_garbage_header_evicted(populated):
    cache, _, key, _ = populated
    path = _entry_path(cache, key)
    path.write_bytes(b"not a header\n" + b"\x00" * 16)
    assert cache.load(key, "BR") is None
    assert cache.stats.evicted == 1


def test_stale_format_version_evicted(populated):
    cache, _, key, _ = populated
    path = _entry_path(cache, key)
    blob = path.read_bytes()
    newline = blob.find(b"\n")
    header = json.loads(blob[:newline])
    header["format"] = CACHE_FORMAT_VERSION + 1
    path.write_bytes(
        json.dumps(header, sort_keys=True).encode() + blob[newline:]
    )
    assert cache.load(key, "BR") is None
    assert cache.stats.evicted == 1


def test_key_mismatch_evicted(populated):
    # An entry renamed (or hash-colliding) to a key it was not stored
    # under fails the header's key check.
    cache, _, key, _ = populated
    other = "f" * 32
    target = cache.cache_dir / other[:2] / f"{other}.partial"
    target.parent.mkdir(parents=True, exist_ok=True)
    _entry_path(cache, key).rename(target)
    assert cache.load(other, "BR") is None
    assert cache.stats.evicted == 1


def test_country_mismatch_evicted(populated):
    cache, pipeline, _, partial = populated
    us_key = cache.key_for(pipeline, "US")
    cache.store(us_key, partial)  # BR's partial filed under US's key
    assert cache.load(us_key, "US") is None
    assert cache.stats.evicted == 1


def test_recompute_after_eviction_round_trips(populated):
    cache, pipeline, key, partial = populated
    _entry_path(cache, key).write_bytes(b"torn")
    assert cache.load(key, "BR") is None
    cache.store(key, pipeline.scan_partial("BR"))
    assert cache.load(key, "BR") == partial


def test_entry_count_and_clear(populated):
    cache, pipeline, _, partial = populated
    cache.store(cache.key_for(pipeline, "US"), partial)
    assert cache.entry_count() == 2
    assert cache.clear() == 2
    assert cache.entry_count() == 0


def test_stats_summary_renders():
    stats = ScanCache.__new__(ScanCache)  # summary needs only stats
    from repro.cache import CacheStats

    s = CacheStats(hits=3, misses=1, bytes_read=2048, time_saved_s=1.25)
    assert "3 hits, 1 misses (75% hit rate)" in s.summary()
    assert "2.0 KiB read" in s.summary()


def test_partial_pickles_with_bulk_forced(populated):
    # Process executors ship partials across process boundaries; a
    # deferred partial must materialize, not pickle its loader.
    cache, _, key, partial = populated
    lazy = cache.load(key, "BR")
    assert lazy._hosts is None
    clone = pickle.loads(pickle.dumps(lazy))
    assert isinstance(clone, CountryPartial)
    assert clone == partial
    assert clone._hosts is not None
