"""Cache maintenance: inventory, usage stats and LRU-by-mtime pruning."""

from __future__ import annotations

import os

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.cache import ScanCache

CODES = ("BR", "US", "FR")


@pytest.fixture()
def populated(tmp_path) -> ScanCache:
    """A cache holding one real entry per country of a tiny run."""
    cache = ScanCache(tmp_path / "cache")
    config = WorldConfig(seed=7, scale=0.01, countries=CODES)
    Pipeline(SyntheticWorld.generate(config)).run(cache=cache)
    return cache


def _set_mtimes(cache: ScanCache, mtimes) -> None:
    """Pin each entry's mtime (oldest-first inventory order)."""
    for entry, mtime in zip(cache.inventory(), mtimes):
        os.utime(entry.path, (mtime, mtime))


def test_inventory_lists_every_entry_oldest_first(populated):
    entries = populated.inventory()
    assert len(entries) == len(CODES)
    assert {entry.country for entry in entries} == set(CODES)
    assert all(entry.size_bytes > 0 for entry in entries)
    assert all(entry.path.exists() for entry in entries)
    mtimes = [entry.mtime for entry in entries]
    assert mtimes == sorted(mtimes)


def test_usage_aggregates_the_inventory(populated):
    entries = populated.inventory()
    usage = populated.usage()
    assert usage["entries"] == len(entries)
    assert usage["total_bytes"] == sum(e.size_bytes for e in entries)
    assert usage["countries"] == {code: 1 for code in CODES}
    assert usage["oldest_mtime"] == entries[0].mtime
    assert usage["newest_mtime"] == entries[-1].mtime


def test_usage_of_an_empty_cache(tmp_path):
    usage = ScanCache(tmp_path / "empty").usage()
    assert usage["entries"] == 0
    assert usage["total_bytes"] == 0
    assert usage["oldest_mtime"] is None


def test_prune_requires_a_criterion(populated):
    with pytest.raises(ValueError, match="max_bytes and/or older_than_s"):
        populated.prune()


def test_dry_run_removes_nothing(populated):
    result = populated.prune(max_bytes=0, dry_run=True)
    assert result.dry_run
    assert result.removed == len(CODES)
    assert result.kept == 0
    assert "would remove" in result.summary()
    # Nothing actually left the disk.
    assert len(populated.inventory()) == len(CODES)


def test_age_out_uses_the_reference_clock(populated):
    _set_mtimes(populated, (100.0, 200.0, 300.0))
    result = populated.prune(older_than_s=150.0, now=400.0)
    # Ages are 300, 200 and 100 seconds; only the first two exceed 150.
    assert result.removed == 2
    assert result.kept == 1
    survivors = populated.inventory()
    assert len(survivors) == 1
    assert survivors[0].mtime == 300.0


def test_byte_budget_evicts_oldest_first(populated):
    _set_mtimes(populated, (100.0, 200.0, 300.0))
    entries = populated.inventory()
    total = sum(entry.size_bytes for entry in entries)
    # One byte under the total forces out exactly the oldest entry.
    result = populated.prune(max_bytes=total - 1)
    assert result.removed == 1
    assert result.removed_bytes == entries[0].size_bytes
    assert not entries[0].path.exists()
    assert result.kept_bytes == total - entries[0].size_bytes

    # A zero budget clears the rest.
    result = populated.prune(max_bytes=0)
    assert result.kept == 0
    assert populated.inventory() == []


def test_prune_breaks_mtime_ties_by_key(populated):
    _set_mtimes(populated, (100.0, 100.0, 300.0))
    tied = sorted(populated.inventory()[:2], key=lambda e: e.key)
    total = sum(e.size_bytes for e in populated.inventory())
    result = populated.prune(max_bytes=total - 1)
    # Of the two tied-oldest entries, the smaller key goes first.
    assert result.removed == 1
    assert not tied[0].path.exists()
    assert tied[1].path.exists()


def test_pruned_entries_turn_into_misses(populated, tmp_path):
    keys = [entry.key for entry in populated.inventory()]
    populated.prune(max_bytes=0)
    for key, code in zip(keys, CODES):
        assert populated.load(key, code) is None


def test_prune_result_is_json_ready(populated):
    import json

    payload = populated.prune(max_bytes=0, dry_run=True).to_dict()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["examined"] == len(CODES)
