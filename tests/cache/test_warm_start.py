"""Warm-start contract: byte-identical datasets cold vs warm, under every
executor, with and without fault injection; recovery and gating rules."""

from __future__ import annotations

import dataclasses

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.cache import ScanCache
from repro.core.geolocation import Geolocator
from repro.exec import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.io import save_dataset

CONFIG = WorldConfig(seed=42, scale=0.03, countries=("BR", "US", "FR", "JP"))
FAULTED = dataclasses.replace(CONFIG, fault_rate=0.15)


@pytest.fixture(scope="module")
def warm_world() -> SyntheticWorld:
    return SyntheticWorld.generate(CONFIG)


def _export(world, tmp_path, name, cache=None, executor=None, countries=None):
    pipeline = Pipeline(world)
    if executor is not None:
        with executor:
            dataset = pipeline.run(countries, executor=executor, cache=cache)
    else:
        dataset = pipeline.run(countries, cache=cache)
    out = tmp_path / f"{name}.jsonl"
    save_dataset(dataset, out)
    return out.read_bytes()


def test_cold_then_warm_byte_identical(warm_world, tmp_path):
    uncached = _export(warm_world, tmp_path, "uncached")
    cold_cache = ScanCache(tmp_path / "cache")
    cold = _export(warm_world, tmp_path, "cold", cache=cold_cache)
    warm_cache = ScanCache(tmp_path / "cache")
    warm = _export(warm_world, tmp_path, "warm", cache=warm_cache)

    assert cold == uncached  # caching must not change results
    assert warm == cold
    assert cold_cache.stats.misses == len(CONFIG.countries)
    assert warm_cache.stats.hits == len(CONFIG.countries)
    assert warm_cache.stats.misses == 0


def test_faulted_cold_then_warm_byte_identical(tmp_path):
    world = SyntheticWorld.generate(FAULTED)
    uncached = _export(world, tmp_path, "uncached")
    cold = _export(world, tmp_path, "cold", cache=ScanCache(tmp_path / "c"))
    warm_cache = ScanCache(tmp_path / "c")
    warm = _export(world, tmp_path, "warm", cache=warm_cache)
    assert cold == uncached
    assert warm == cold
    assert warm_cache.stats.misses == 0


@pytest.mark.parametrize("make_executor", [
    lambda: ThreadExecutor(workers=2),
    lambda: ProcessExecutor(workers=2),
], ids=["threads", "processes"])
def test_warm_start_under_parallel_executors(warm_world, tmp_path, make_executor):
    serial = _export(warm_world, tmp_path, "serial")
    # Cold fan-out through the parallel executor populates the cache...
    cold_cache = ScanCache(tmp_path / "cache")
    cold = _export(warm_world, tmp_path, "cold",
                   cache=cold_cache, executor=make_executor())
    # ...and a warm run through the same kind of executor hits fully.
    warm_cache = ScanCache(tmp_path / "cache")
    warm = _export(warm_world, tmp_path, "warm",
                   cache=warm_cache, executor=make_executor())
    assert cold == serial
    assert warm == serial
    assert warm_cache.stats.misses == 0


def test_cache_shared_across_executors(warm_world, tmp_path):
    # Entries written by a process fan-out serve a serial warm start.
    serial = _export(warm_world, tmp_path, "serial")
    _export(warm_world, tmp_path, "cold",
            cache=ScanCache(tmp_path / "cache"),
            executor=ProcessExecutor(workers=2))
    warm_cache = ScanCache(tmp_path / "cache")
    warm = _export(warm_world, tmp_path, "warm", cache=warm_cache,
                   executor=SerialExecutor())
    assert warm == serial
    assert warm_cache.stats.misses == 0


def test_partial_hit_scans_only_misses(warm_world, tmp_path):
    cache = ScanCache(tmp_path / "cache")
    pipeline = Pipeline(warm_world)
    pipeline.run(["BR", "US"], cache=cache)

    warm_cache = ScanCache(tmp_path / "cache")
    full = Pipeline(warm_world).run(cache=warm_cache)
    assert warm_cache.stats.hits == 2
    assert warm_cache.stats.misses == len(CONFIG.countries) - 2
    assert set(full.countries) == set(CONFIG.countries)

    uncached = Pipeline(warm_world).run()
    assert full.summarize() == uncached.summarize()
    assert full.validation == uncached.validation


def test_config_change_misses_cleanly(tmp_path):
    world = SyntheticWorld.generate(CONFIG)
    cache = ScanCache(tmp_path / "cache")
    Pipeline(world).run(cache=cache)

    # Same cache dir, different world: every lookup must miss (different
    # keys), and the shifted world's dataset must match its own uncached run.
    shifted_config = dataclasses.replace(CONFIG, seed=CONFIG.seed + 1)
    shifted = SyntheticWorld.generate(shifted_config)
    shifted_cache = ScanCache(tmp_path / "cache")
    cached = _export(shifted, tmp_path, "cached", cache=shifted_cache)
    assert shifted_cache.stats.hits == 0
    assert shifted_cache.stats.misses == len(CONFIG.countries)
    assert cached == _export(shifted, tmp_path, "uncached")


def test_corrupt_entry_recovered_transparently(warm_world, tmp_path):
    cache = ScanCache(tmp_path / "cache")
    cold = _export(warm_world, tmp_path, "cold", cache=cache)

    entries = sorted(cache.cache_dir.glob("*/*.partial"))
    assert len(entries) == len(CONFIG.countries)
    entries[0].write_bytes(b"torn write")
    blob = bytearray(entries[1].read_bytes())
    blob[-3] ^= 0x55
    entries[1].write_bytes(bytes(blob))

    warm_cache = ScanCache(tmp_path / "cache")
    warm = _export(warm_world, tmp_path, "warm", cache=warm_cache)
    assert warm == cold  # recomputed, never trusted
    assert warm_cache.stats.evicted == 2
    assert warm_cache.stats.misses == 2
    assert warm_cache.stats.hits == len(CONFIG.countries) - 2
    # The recomputed entries were stored back and now serve hits.
    again_cache = ScanCache(tmp_path / "cache")
    again = _export(warm_world, tmp_path, "again", cache=again_cache)
    assert again == cold
    assert again_cache.stats.misses == 0


def test_custom_geolocator_rejects_cache(warm_world, tmp_path):
    w = warm_world
    custom = Geolocator(ipinfo=w.ipinfo, manycast=w.manycast,
                        atlas=Pipeline(w).atlas, hoiho=w.hoiho, ipmap=w.ipmap)
    pipeline = Pipeline(w, geolocator=custom)
    assert not pipeline.supports_caching
    with pytest.raises(ValueError, match="custom geolocator"):
        pipeline.run(cache=ScanCache(tmp_path / "cache"))


def test_default_run_does_not_touch_disk(warm_world, tmp_path):
    # cache=None (the default) must not create or read any cache state.
    Pipeline(warm_world).run(["BR"])
    assert list(tmp_path.iterdir()) == []
