"""Key derivation: stability, normalization and selective invalidation."""

from __future__ import annotations

import dataclasses

import pytest

from repro import WorldConfig
from repro.cache import country_key, run_fingerprint, scan_key
from repro.faults.plan import FaultPlan


def _key(config: WorldConfig, country: str = "BR", max_depth: int = 7) -> str:
    return scan_key(config, country, max_depth, FaultPlan.from_config(config))


def test_same_inputs_same_key():
    a = WorldConfig(seed=42, scale=0.05)
    b = WorldConfig(seed=42, scale=0.05)
    assert _key(a) == _key(b)


def test_country_spelling_normalized():
    config = WorldConfig(seed=42, scale=0.05)
    plan = FaultPlan.from_config(config)
    assert scan_key(config, "br", 7, plan) == scan_key(config, "BR", 7, plan)


def test_countries_field_spelling_normalized():
    lower = WorldConfig(seed=42, scale=0.05, countries=("br", "us"))
    upper = WorldConfig(seed=42, scale=0.05, countries=("BR", "US"))
    assert _key(lower) == _key(upper)


def test_explicit_derived_fault_seed_equals_none():
    # fault_seed=None resolves to a seed derived from the world seed; a
    # config spelling that resolved seed out explicitly is the same scan.
    implicit = WorldConfig(seed=42, scale=0.05, fault_rate=0.1)
    resolved = FaultPlan.from_config(implicit).seed
    explicit = dataclasses.replace(implicit, fault_seed=resolved)
    assert _key(implicit) == _key(explicit)


@pytest.mark.parametrize(
    "change",
    [
        {"seed": 43},
        {"scale": 0.06},
        {"countries": ("BR", "US")},
        {"fault_rate": 0.25},
        {"fault_seed": 9},
    ],
)
def test_any_config_field_change_invalidates(change):
    base = WorldConfig(seed=42, scale=0.05, fault_rate=0.1)
    assert _key(base) != _key(dataclasses.replace(base, **change))


def test_max_depth_change_invalidates():
    config = WorldConfig(seed=42, scale=0.05)
    assert _key(config, max_depth=7) != _key(config, max_depth=3)


def test_countries_differ():
    config = WorldConfig(seed=42, scale=0.05)
    assert _key(config, "BR") != _key(config, "US")


def test_custom_fault_plan_fingerprints_its_fields():
    config = WorldConfig(seed=42, scale=0.05)
    plan = FaultPlan.from_config(config)
    bumped = dataclasses.replace(plan, max_retries=plan.max_retries + 1)
    assert scan_key(config, "BR", 7, plan) != scan_key(config, "BR", 7, bumped)


def test_country_key_composes_run_fingerprint():
    config = WorldConfig(seed=42, scale=0.05)
    plan = FaultPlan.from_config(config)
    run_fp = run_fingerprint(config, 7, plan)
    assert scan_key(config, "BR", 7, plan) == country_key(run_fp, "BR")
