"""Key derivation: stability, normalization and selective invalidation."""

from __future__ import annotations

import dataclasses

import pytest

from repro import WorldConfig
from repro.cache import (
    country_key,
    country_slice_fingerprint,
    global_fingerprint,
    scan_key,
)
from repro.datagen.config import CountryOverride
from repro.faults.plan import FaultPlan


def _key(config: WorldConfig, country: str = "BR", max_depth: int = 7) -> str:
    return scan_key(config, country, max_depth, FaultPlan.from_config(config))


def test_same_inputs_same_key():
    a = WorldConfig(seed=42, scale=0.05)
    b = WorldConfig(seed=42, scale=0.05)
    assert _key(a) == _key(b)


def test_country_spelling_normalized():
    config = WorldConfig(seed=42, scale=0.05)
    plan = FaultPlan.from_config(config)
    assert scan_key(config, "br", 7, plan) == scan_key(config, "BR", 7, plan)


def test_countries_field_spelling_normalized():
    lower = WorldConfig(seed=42, scale=0.05, countries=("br", "us"))
    upper = WorldConfig(seed=42, scale=0.05, countries=("BR", "US"))
    assert _key(lower) == _key(upper)


def test_explicit_derived_fault_seed_equals_none():
    # fault_seed=None resolves to a seed derived from the world seed; a
    # config spelling that resolved seed out explicitly is the same scan.
    implicit = WorldConfig(seed=42, scale=0.05, fault_rate=0.1)
    resolved = FaultPlan.from_config(implicit).seed
    explicit = dataclasses.replace(implicit, fault_seed=resolved)
    assert _key(implicit) == _key(explicit)


@pytest.mark.parametrize(
    "change",
    [
        {"seed": 43},
        {"scale": 0.06},
        {"fault_rate": 0.25},
        {"fault_seed": 9},
    ],
)
def test_any_global_field_change_invalidates(change):
    base = WorldConfig(seed=42, scale=0.05, fault_rate=0.1)
    assert _key(base) != _key(dataclasses.replace(base, **change))


def test_country_selection_does_not_invalidate():
    # The generator is per-country hermetic: which *other* countries are
    # in the sample never changes a country's scan, so the selection is
    # deliberately excluded from the key (incremental snapshots depend
    # on this when the evolution model adds a country mid-series).
    base = WorldConfig(seed=42, scale=0.05)
    subset = dataclasses.replace(base, countries=("BR", "US"))
    assert _key(base) == _key(subset)


def test_max_depth_change_invalidates():
    config = WorldConfig(seed=42, scale=0.05)
    assert _key(config, max_depth=7) != _key(config, max_depth=3)


def test_countries_differ():
    config = WorldConfig(seed=42, scale=0.05)
    assert _key(config, "BR") != _key(config, "US")


def test_custom_fault_plan_fingerprints_its_fields():
    config = WorldConfig(seed=42, scale=0.05)
    plan = FaultPlan.from_config(config)
    bumped = dataclasses.replace(plan, max_retries=plan.max_retries + 1)
    assert scan_key(config, "BR", 7, plan) != scan_key(config, "BR", 7, bumped)


def test_country_key_composes_global_fingerprint():
    config = WorldConfig(seed=42, scale=0.05)
    plan = FaultPlan.from_config(config)
    global_fp = global_fingerprint(config, 7, plan)
    slice_fp = country_slice_fingerprint(config, "BR")
    assert scan_key(config, "BR", 7, plan) == country_key(
        global_fp, "BR", slice_fp
    )


# ------------------------------------------------ per-country key stability

def _with_override(base: WorldConfig, override: CountryOverride) -> WorldConfig:
    return dataclasses.replace(base, country_overrides=(override,))


@pytest.mark.parametrize(
    "override",
    [
        CountryOverride(country="BR", extra_soes=1),
        CountryOverride(country="BR", hyperscaler_shift=0.05),
        CountryOverride(country="BR", prefix_epoch=2),
        CountryOverride(country="BR", provider_tilt=(("amazon", 1.4),)),
        CountryOverride(country="BR", vantage_rank=1),
    ],
)
def test_override_rekeys_only_its_country(override):
    """The incremental hit-rate guarantee: mutating one country's world
    slice changes that country's BLAKE2 key and nobody else's."""
    base = WorldConfig(seed=42, scale=0.05)
    mutated = _with_override(base, override)
    assert _key(base, "BR") != _key(mutated, "BR")
    for other in ("US", "FR", "DE"):
        assert _key(base, other) == _key(mutated, other)


def test_default_override_is_a_fingerprint_noop():
    base = WorldConfig(seed=42, scale=0.05)
    noop = _with_override(base, CountryOverride(country="BR"))
    assert _key(base, "BR") == _key(noop, "BR")


def test_override_spelling_normalized():
    lower = _with_override(
        WorldConfig(seed=42, scale=0.05),
        CountryOverride(country="br", extra_soes=1),
    )
    upper = _with_override(
        WorldConfig(seed=42, scale=0.05),
        CountryOverride(country="BR", extra_soes=1),
    )
    assert _key(lower, "BR") == _key(upper, "BR")


def test_global_fingerprint_ignores_overrides_and_selection():
    base = WorldConfig(seed=42, scale=0.05)
    mutated = dataclasses.replace(
        base,
        countries=("BR", "US"),
        country_overrides=(CountryOverride(country="BR", extra_soes=2),),
    )
    plan = FaultPlan.from_config(base)
    assert global_fingerprint(base, 7, plan) == \
        global_fingerprint(mutated, 7, plan)
