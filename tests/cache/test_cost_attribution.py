"""Per-country scan cost attribution in the cache (``scan_cached``).

Entries must record the wall seconds of *their own* country's scan —
not an even split of the miss batch — so warm starts report the time
they actually saved.  Every executor records ``Pipeline.scan_seconds``
per country (process shards ship theirs back with the partials).
"""

from __future__ import annotations

import json

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.cache import ScanCache
from repro.exec import ProcessExecutor, SerialExecutor, ThreadExecutor

COUNTRIES = ("BR", "US", "FR", "JP")
CONFIG = WorldConfig(seed=42, scale=0.03, countries=COUNTRIES,
                     include_topsites=False)


@pytest.fixture(scope="module")
def cost_world() -> SyntheticWorld:
    return SyntheticWorld.generate(CONFIG)


def _entry_costs(cache: ScanCache) -> dict[str, float]:
    """country -> recorded scan_s, read from the entry headers."""
    costs = {}
    for entry in cache.cache_dir.glob("*/*.partial"):
        header = json.loads(entry.read_bytes().split(b"\n", 1)[0])
        costs[header["country"]] = header["scan_s"]
    return costs


@pytest.mark.parametrize("executor_factory", [
    SerialExecutor,
    lambda: ThreadExecutor(workers=2),
    lambda: ProcessExecutor(workers=2),
], ids=["serial", "threads", "processes"])
def test_entries_record_their_own_scan_cost(cost_world, tmp_path,
                                            executor_factory):
    cache = ScanCache(tmp_path / "cache")
    pipeline = Pipeline(cost_world)
    with executor_factory() as executor:
        pipeline.run(list(COUNTRIES), executor=executor, cache=cache)
    costs = _entry_costs(cache)
    assert set(costs) == set(COUNTRIES)
    # True per-country figures, not the batch average: they match the
    # pipeline's own records and therefore are not all equal.
    for country in COUNTRIES:
        assert costs[country] == pytest.approx(
            pipeline.scan_seconds[country], abs=1e-6
        )
    assert len(set(costs.values())) > 1


def test_every_executor_records_scan_seconds(cost_world):
    for factory in (SerialExecutor, lambda: ThreadExecutor(workers=2),
                    lambda: ProcessExecutor(workers=2)):
        pipeline = Pipeline(cost_world)
        with factory() as executor:
            pipeline.run(list(COUNTRIES), executor=executor)
        assert set(pipeline.scan_seconds) == set(COUNTRIES)
        assert all(seconds > 0.0
                   for seconds in pipeline.scan_seconds.values())


def test_warm_hits_report_summed_per_entry_costs(cost_world, tmp_path):
    cold_cache = ScanCache(tmp_path / "cache")
    Pipeline(cost_world).run(list(COUNTRIES), cache=cold_cache)
    per_entry = _entry_costs(cold_cache)

    warm_cache = ScanCache(tmp_path / "cache")
    Pipeline(cost_world).run(list(COUNTRIES), cache=warm_cache)
    assert warm_cache.stats.hits == len(COUNTRIES)
    assert warm_cache.stats.time_saved_s == pytest.approx(
        sum(per_entry.values()), abs=1e-5
    )
