"""Columnar bulk codec == pickle bulk, exactly."""

from __future__ import annotations

import json

import pytest

from repro.cache.columnar import (
    BULK_COLUMNAR,
    BULK_PICKLE,
    decode_bulk,
    encode_bulk,
)
from repro.cache.store import ScanCache
from repro.core.geolocation import ValidationMethod
from repro.core.urlfilter import FilterVia
from repro.exec.partials import HostAnnotation


def _hosts():
    return {
        "www.gov.br": HostAnnotation(
            address=123456, asn=64500, organization="Serpro",
            registered_country="BR", gov_operated=True,
            server_country="BR", anycast=False,
            validation=ValidationMethod.ACTIVE_PROBING,
        ),
        "cdn.example": HostAnnotation(
            address=789, asn=13335, organization="Cloudflare, Inc.",
            registered_country="US", gov_operated=False,
            server_country=None, anycast=True,
            validation=ValidationMethod.MULTISTAGE,
        ),
    }


def _urls():
    return [
        ("https://www.gov.br/", "www.gov.br", 1000, FilterVia.TLD, 0),
        ("https://www.gov.br/a", "www.gov.br", 2048, FilterVia.DOMAIN, 1),
        # A hostname absent from hosts must still round-trip.
        ("https://stray.gov.br/", "stray.gov.br", 5, FilterVia.SAN, 2),
    ]


def test_roundtrip_exact():
    hosts, urls = _hosts(), _urls()
    decoded_hosts, decoded_urls = decode_bulk(encode_bulk(hosts, urls))
    assert decoded_hosts == hosts
    assert list(decoded_hosts) == list(hosts)  # key order preserved
    assert decoded_urls == urls
    for observed in decoded_urls:
        assert isinstance(observed, tuple)
        assert isinstance(observed[2], int) and isinstance(observed[4], int)


def test_roundtrip_empty():
    assert decode_bulk(encode_bulk({}, [])) == ({}, [])


def test_encode_rejects_foreign_enums():
    urls = [("https://x/", "x", 1, "not-a-via", 0)]
    with pytest.raises(Exception):
        encode_bulk({}, urls)


def test_decode_rejects_truncation():
    blob = encode_bulk(_hosts(), _urls())
    with pytest.raises(ValueError):
        decode_bulk(blob[:-3])


def test_decode_rejects_inconsistent_counts():
    blob = bytearray(encode_bulk(_hosts(), _urls()))
    # Corrupt the meta section's host count.
    meta_start = blob.find(b'{"countries"')
    assert meta_start > 0
    patched = blob.replace(b'"hosts": 2', b'"hosts": 1')
    with pytest.raises(ValueError):
        decode_bulk(bytes(patched))


def _stored_entry(cache, partial):
    cache.store("ab" * 16, partial, scan_s=0.5)
    path = cache._entry_path("ab" * 16)
    blob = path.read_bytes()
    header = json.loads(blob[:blob.find(b"\n")])
    return path, header


def test_cache_stores_columnar_and_loads_equal(tmp_path, dataset):
    from repro.exec.partials import CountryPartial

    partial = CountryPartial(
        country="BR", landing_count=1, discarded_url_count=0,
        unresolved_hostnames=[], depth_histogram={0: 3},
        hosts=_hosts(), urls=_urls(),
    )
    cache = ScanCache(tmp_path)
    _, header = _stored_entry(cache, partial)
    assert header["bulk"] == BULK_COLUMNAR
    loaded = cache.load("ab" * 16, "BR")
    assert loaded == partial
    assert loaded.hosts == partial.hosts
    assert loaded.urls == partial.urls


def test_cache_falls_back_to_pickle(tmp_path):
    from repro.exec.partials import CountryPartial

    # A stringly via is outside the FilterVia code space (encode_bulk
    # raises), but pickles fine -- the fallback must kick in.
    partial = CountryPartial(
        country="BR", landing_count=0, discarded_url_count=0,
        unresolved_hostnames=[], depth_histogram={},
        hosts={}, urls=[("https://x/", "x", 1, "not-a-via", 0)],
    )
    cache = ScanCache(tmp_path)
    _, header = _stored_entry(cache, partial)
    assert header["bulk"] == BULK_PICKLE
    loaded = cache.load("ab" * 16, "BR")
    assert len(loaded.urls) == 1


def test_unknown_bulk_codec_evicts(tmp_path):
    from repro.exec.partials import CountryPartial

    partial = CountryPartial(
        country="BR", landing_count=0, discarded_url_count=0,
        unresolved_hostnames=[], depth_histogram={},
        hosts=_hosts(), urls=_urls(),
    )
    cache = ScanCache(tmp_path)
    path, header = _stored_entry(cache, partial)
    blob = path.read_bytes()
    payload = blob[blob.find(b"\n") + 1:]
    import hashlib
    header["bulk"] = "carrier-pigeon"
    header["digest"] = hashlib.blake2b(payload, digest_size=16).hexdigest()
    path.write_bytes(json.dumps(header, sort_keys=True).encode() + b"\n"
                     + payload)
    assert cache.load("ab" * 16, "BR") is None
    assert cache.stats.evicted == 1
    assert not path.exists()
