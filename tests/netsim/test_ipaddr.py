"""Tests for IPv4 helpers and prefix allocation."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.ipaddr import Prefix, PrefixPool, format_ip, parse_ip


def test_format_known_address():
    assert format_ip(0x01020304) == "1.2.3.4"
    assert format_ip(0) == "0.0.0.0"
    assert format_ip(0xFFFFFFFF) == "255.255.255.255"


def test_parse_known_address():
    assert parse_ip("1.2.3.4") == 0x01020304


@pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""])
def test_parse_rejects_malformed(bad):
    with pytest.raises(ValueError):
        parse_ip(bad)


def test_format_rejects_out_of_range():
    with pytest.raises(ValueError):
        format_ip(-1)
    with pytest.raises(ValueError):
        format_ip(1 << 32)


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_roundtrip(value):
    assert parse_ip(format_ip(value)) == value


def test_prefix_contains():
    prefix = Prefix(parse_ip("10.1.2.0"), 24)
    assert parse_ip("10.1.2.7") in prefix
    assert parse_ip("10.1.3.7") not in prefix


def test_prefix_rejects_host_bits():
    with pytest.raises(ValueError):
        Prefix(parse_ip("10.1.2.1"), 24)


def test_prefix_rejects_bad_length():
    with pytest.raises(ValueError):
        Prefix(0, 33)


def test_prefix_address_offsets():
    prefix = Prefix(parse_ip("10.1.2.0"), 24)
    assert prefix.address(1) == parse_ip("10.1.2.1")
    with pytest.raises(ValueError):
        prefix.address(256)


def test_prefix_size_and_str():
    prefix = Prefix(parse_ip("10.0.0.0"), 22)
    assert prefix.size == 1024
    assert str(prefix) == "10.0.0.0/22"


def test_pool_hands_out_disjoint_prefixes():
    pool = PrefixPool()
    seen = set()
    previous = None
    for _ in range(100):
        prefix = pool.allocate()
        assert prefix.length == 24
        assert prefix.base not in seen
        seen.add(prefix.base)
        if previous is not None:
            assert prefix.base == previous.base + 256
        previous = prefix
    assert pool.allocated_count == 100
