"""Additional edge-case tests across the network substrate."""

import pytest

from repro.netsim.asn import ASKind, AutonomousSystem, PoP
from repro.netsim.dns import DnsZone, GeoARecord, Resolver, StaticARecord
from repro.netsim.ipaddr import Prefix, parse_ip
from repro.netsim.registry import IpRegistry
from repro.netsim.whois import WhoisService


def test_whois_unknown_asn_raises():
    whois = WhoisService(IpRegistry())
    with pytest.raises(KeyError):
        whois.query_asn(64512)


def test_registry_get_as_unknown_raises():
    with pytest.raises(KeyError):
        IpRegistry().get_as(1)


def test_prefix_of_length_32():
    prefix = Prefix(parse_ip("10.0.0.1") & 0xFFFFFFFF, 32)
    assert prefix.size == 1
    assert prefix.address(0) == prefix.base
    with pytest.raises(ValueError):
        prefix.address(1)


def test_prefix_of_length_zero_contains_everything():
    prefix = Prefix(0, 0)
    assert parse_ip("200.1.2.3") in prefix
    assert prefix.size == 1 << 32


def test_dns_remove_roundtrip():
    zone = DnsZone()
    zone.add("a.example", StaticARecord(address=5))
    assert zone.remove("A.EXAMPLE")
    assert not zone.remove("a.example")
    assert zone.get("a.example") is None
    # Re-adding after removal is allowed.
    zone.add("a.example", StaticARecord(address=6))
    assert zone.get("a.example").address == 6


def test_geo_record_single_endpoint_always_selected():
    tokyo = PoP("JP", "Tokyo", 35.7, 139.7)
    record = GeoARecord(endpoints=((tokyo, 42),))
    assert record.select(0.0, 0.0) == 42
    assert record.select(-80.0, 120.0) == 42


def test_resolver_is_case_insensitive_through_chain():
    zone = DnsZone()
    zone.add("WWW.Example.COM", StaticARecord(address=7))
    resolver = Resolver(zone)
    assert resolver.resolve("www.example.com", 0, 0).address == 7


def test_as_string_representation():
    autonomous_system = AutonomousSystem(
        asn=13335, name="Cloudflare", organization="Cloudflare, Inc.",
        registration_country="US", kind=ASKind.GLOBAL_PROVIDER,
        pops=(PoP("US", "Washington", 38.9, -77.0),),
    )
    assert str(autonomous_system) == "AS13335 Cloudflare"


def test_allocation_across_multiple_pops_uses_distinct_prefixes():
    registry = IpRegistry()
    autonomous_system = AutonomousSystem(
        asn=64700, name="MULTI", organization="Multi",
        registration_country="DE", kind=ASKind.GLOBAL_PROVIDER,
        pops=(PoP("DE", "Frankfurt", 50.1, 8.7),
              PoP("SG", "Singapore", 1.3, 103.8)),
    )
    a = registry.allocate_address(autonomous_system, autonomous_system.pops[0])
    b = registry.allocate_address(autonomous_system, autonomous_system.pops[1])
    assert (a & 0xFFFFFF00) != (b & 0xFFFFFF00)
    assert registry.pop_of(a).country == "DE"
    assert registry.pop_of(b).country == "SG"
