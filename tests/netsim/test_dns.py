"""Tests for DNS resolution: A records, geo records, CNAME chains."""

import pytest

from repro.netsim.asn import PoP
from repro.netsim.dns import (
    CnameLoopError,
    CnameRecord,
    DnsZone,
    GeoARecord,
    NxDomain,
    Resolver,
    StaticARecord,
)

_TOKYO = PoP("JP", "Tokyo", 35.7, 139.7)
_FRANKFURT = PoP("DE", "Frankfurt", 50.1, 8.7)


@pytest.fixture
def zone():
    z = DnsZone()
    z.add("www.gov.br", StaticARecord(address=100))
    z.add("cdn.example.net", StaticARecord(address=200))
    z.add("www.health.gov.br", CnameRecord(target="cdn.example.net"))
    z.add("geo.example.net", GeoARecord(endpoints=((_TOKYO, 301), (_FRANKFURT, 302))))
    return z


def test_static_resolution(zone):
    resolver = Resolver(zone)
    result = resolver.resolve("WWW.GOV.BR", 0, 0)
    assert result.address == 100
    assert result.cname_chain == ()
    assert result.canonical_name == "www.gov.br"


def test_cname_followed(zone):
    resolver = Resolver(zone)
    result = resolver.resolve("www.health.gov.br", 0, 0)
    assert result.address == 200
    assert result.cname_chain == ("cdn.example.net",)
    assert result.canonical_name == "cdn.example.net"


def test_geo_record_selects_nearest(zone):
    resolver = Resolver(zone)
    from_tokyo = resolver.resolve("geo.example.net", 35.7, 139.7)
    from_berlin = resolver.resolve("geo.example.net", 52.5, 13.4)
    assert from_tokyo.address == 301
    assert from_berlin.address == 302


def test_nxdomain(zone):
    resolver = Resolver(zone)
    with pytest.raises(NxDomain):
        resolver.resolve("nonexistent.example", 0, 0)


def test_cname_loop_detected():
    zone = DnsZone()
    zone.add("a.example", CnameRecord(target="b.example"))
    zone.add("b.example", CnameRecord(target="a.example"))
    resolver = Resolver(zone)
    with pytest.raises(CnameLoopError):
        resolver.resolve("a.example", 0, 0)


def test_long_cname_chain_rejected():
    zone = DnsZone()
    for index in range(12):
        zone.add(f"h{index}.example", CnameRecord(target=f"h{index + 1}.example"))
    zone.add("h12.example", StaticARecord(address=1))
    resolver = Resolver(zone)
    with pytest.raises(CnameLoopError):
        resolver.resolve("h0.example", 0, 0)


def test_duplicate_record_rejected(zone):
    with pytest.raises(ValueError):
        zone.add("www.gov.br", StaticARecord(address=999))


def test_first_cname(zone):
    resolver = Resolver(zone)
    assert resolver.first_cname("www.health.gov.br") == "cdn.example.net"
    assert resolver.first_cname("www.gov.br") is None
    assert resolver.first_cname("missing.example") is None


def test_geo_record_requires_endpoints():
    with pytest.raises(ValueError):
        GeoARecord(endpoints=())


def test_zone_len_and_contains(zone):
    assert len(zone) == 4
    assert "www.gov.br" in zone
    assert "WWW.GOV.BR" in zone
    assert "nope.example" not in zone
