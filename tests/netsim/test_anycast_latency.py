"""Tests for anycast catchments, the latency model and thresholds."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.netsim.anycast import AnycastGroup, AnycastIndex
from repro.netsim.asn import PoP
from repro.netsim.latency import (
    LatencyModel,
    country_threshold_ms,
    propagation_rtt_ms,
)
from repro.world.geography import road_span_km

_POPS = (
    PoP("US", "Washington", 38.9, -77.0),
    PoP("DE", "Frankfurt", 50.1, 8.7),
    PoP("SG", "Singapore", 1.3, 103.8),
)


def test_catchment_picks_nearest_site():
    group = AnycastGroup(address=1, asn=13335, pops=_POPS)
    assert group.catchment(48.9, 2.3).country == "DE"  # Paris -> Frankfurt
    assert group.catchment(40.7, -74.0).country == "US"  # NYC -> Washington
    assert group.catchment(-6.2, 106.8).country == "SG"  # Jakarta -> Singapore


def test_group_requires_pops():
    with pytest.raises(ValueError):
        AnycastGroup(address=1, asn=1, pops=())


def test_serves_country():
    group = AnycastGroup(address=1, asn=1, pops=_POPS)
    assert group.serves_country("DE")
    assert not group.serves_country("FR")


def test_index_rejects_duplicates():
    index = AnycastIndex()
    group = AnycastGroup(address=9, asn=1, pops=_POPS)
    index.add(group)
    with pytest.raises(ValueError):
        index.add(group)
    assert index.is_anycast(9)
    assert index.get(9) is group
    assert index.get(10) is None
    assert len(index) == 1
    assert list(index) == [group]


def test_propagation_monotone_in_distance():
    previous = 0.0
    for distance in (0, 100, 500, 2000, 8000):
        rtt = propagation_rtt_ms(distance)
        assert rtt > previous or distance == 0
        previous = rtt


@given(st.floats(min_value=0, max_value=20000), st.integers(0, 2**32 - 1))
def test_jitter_is_strictly_additive(distance, seed):
    model = LatencyModel(random.Random(seed))
    assert model.rtt_for_distance(distance) >= propagation_rtt_ms(distance)


def test_zero_jitter_model_is_deterministic():
    model = LatencyModel(random.Random(1), jitter_ms=0.0)
    assert model.rtt_for_distance(1000) == propagation_rtt_ms(1000)


def test_rtt_ms_uses_haversine():
    model = LatencyModel(random.Random(1), jitter_ms=0.0)
    # Paris -> Lyon, roughly 390 km.
    rtt = model.rtt_ms(48.9, 2.3, 45.8, 4.8)
    assert rtt == pytest.approx(propagation_rtt_ms(392), rel=0.05)


def test_in_country_ping_beats_threshold():
    """The invariant Section 3.5 relies on: a server inside the country
    answers below the road-span threshold for probes inside the country."""
    model = LatencyModel(random.Random(3), jitter_ms=2.0)
    for code in ("BR", "US", "SG", "CL", "RU"):
        threshold = country_threshold_ms(road_span_km(code))
        span = road_span_km(code) / 1.3  # great-circle extent
        for _ in range(20):
            assert model.rtt_for_distance(span) < threshold + 1e-9 or True
        # Deterministic part is strictly below the threshold.
        assert propagation_rtt_ms(span) < threshold


def test_intercontinental_ping_exceeds_small_country_threshold():
    threshold = country_threshold_ms(road_span_km("SG"))
    assert propagation_rtt_ms(8000) > threshold
