"""Tests for the AS model, registry allocation and WHOIS."""

import pytest

from repro.netsim.asn import ASKind, AutonomousSystem, PoP
from repro.netsim.registry import IpRegistry
from repro.netsim.whois import WhoisService


@pytest.fixture
def gov_as():
    return AutonomousSystem(
        asn=65001,
        name="GOVNET-BR-1",
        organization="Ministry of Health of Brazil",
        registration_country="BR",
        kind=ASKind.GOVERNMENT,
        pops=(PoP("BR", "Brasilia", -15.8, -47.9),),
        website="https://www.health.gov.br",
        contact_domain="gov.br",
    )


@pytest.fixture
def cdn_as():
    return AutonomousSystem(
        asn=13335,
        name="Cloudflare",
        organization="Cloudflare, Inc.",
        registration_country="US",
        kind=ASKind.GLOBAL_PROVIDER,
        pops=(
            PoP("US", "Washington", 38.9, -77.0),
            PoP("BR", "Sao Paulo", -23.6, -46.6),
        ),
        anycast_capable=True,
    )


def test_as_requires_pops():
    with pytest.raises(ValueError):
        AutonomousSystem(
            asn=1, name="X", organization="X", registration_country="US",
            kind=ASKind.ISP, pops=(),
        )


def test_as_rejects_bad_asn():
    with pytest.raises(ValueError):
        AutonomousSystem(
            asn=0, name="X", organization="X", registration_country="US",
            kind=ASKind.ISP, pops=(PoP("US", "c", 0, 0),),
        )


def test_kind_government_operated():
    assert ASKind.GOVERNMENT.is_government_operated
    assert ASKind.SOE.is_government_operated
    assert not ASKind.LOCAL_HOSTING.is_government_operated
    assert not ASKind.GLOBAL_PROVIDER.is_government_operated


def test_pop_queries(cdn_as):
    assert cdn_as.has_pop_in("BR")
    assert not cdn_as.has_pop_in("FR")
    assert cdn_as.pop_countries == {"US", "BR"}
    assert len(cdn_as.pops_in("US")) == 1


def test_allocation_fills_24s_lazily(gov_as):
    registry = IpRegistry()
    pop = gov_as.pops[0]
    addresses = [registry.allocate_address(gov_as, pop) for _ in range(300)]
    assert len(set(addresses)) == 300
    # 300 addresses need more than one /24 (254 usable per block).
    assert registry.prefix_count == 2
    for address in addresses:
        entry = registry.lookup(address)
        assert entry.asn == gov_as.asn
        assert entry.registration_country == "BR"
        assert address in entry.prefix


def test_lookup_unallocated_raises():
    registry = IpRegistry()
    with pytest.raises(KeyError):
        registry.lookup(12345)


def test_pop_of_roundtrip(gov_as, cdn_as):
    registry = IpRegistry()
    a = registry.allocate_address(gov_as, gov_as.pops[0])
    b = registry.allocate_address(cdn_as, cdn_as.pops[1])
    assert registry.pop_of(a).country == "BR"
    assert registry.pop_of(b).country == "BR"
    assert registry.pop_of(b).city == "Sao Paulo"


def test_duplicate_asn_registration_rejected(gov_as):
    registry = IpRegistry()
    registry.register_as(gov_as)
    clone = AutonomousSystem(
        asn=gov_as.asn, name="OTHER", organization="Other",
        registration_country="US", kind=ASKind.ISP,
        pops=(PoP("US", "c", 0, 0),),
    )
    with pytest.raises(ValueError):
        registry.register_as(clone)


def test_whois_ip_record(gov_as):
    registry = IpRegistry()
    address = registry.allocate_address(gov_as, gov_as.pops[0])
    whois = WhoisService(registry)
    record = whois.query_ip(address)
    assert record.asn == 65001
    assert record.organization == "Ministry of Health of Brazil"
    assert record.registration_country == "BR"
    assert record.contact_email == "noc@gov.br"
    assert record.as_name == "GOVNET-BR-1"


def test_whois_asn_attributes(cdn_as):
    registry = IpRegistry()
    registry.register_as(cdn_as)
    whois = WhoisService(registry)
    attrs = whois.query_asn(13335)
    assert attrs["org"] == "Cloudflare, Inc."
    assert attrs["country"] == "US"
    assert attrs["email"] is None  # no contact domain configured
