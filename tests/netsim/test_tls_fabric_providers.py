"""Tests for certificates, the serving fabric and the provider catalog."""

import pytest

from repro.netsim.anycast import AnycastGroup, AnycastIndex
from repro.netsim.asn import ASKind, AutonomousSystem, PoP
from repro.netsim.fabric import ServingFabric
from repro.netsim.providers import (
    GLOBAL_PROVIDERS,
    PROVIDERS_BY_KEY,
    WIDE,
    provider_keys,
)
from repro.netsim.registry import IpRegistry
from repro.netsim.tls import Certificate, CertificateStore


def test_certificate_covers_exact_and_wildcard():
    cert = Certificate(subject="www.gov.br", sans=("www.gov.br", "*.gov.br"))
    assert cert.covers("www.gov.br")
    assert cert.covers("static.gov.br")
    assert not cert.covers("a.b.gov.br")  # wildcard is single-label
    assert not cert.covers("gov.br.evil.com")


def test_certificate_store_roundtrip():
    store = CertificateStore()
    cert = Certificate(subject="a.example", sans=("a.example", "b.example"))
    store.install("A.EXAMPLE", cert)
    assert store.get("a.example") is cert
    assert store.sans_of("a.example") == ("a.example", "b.example")
    assert store.sans_of("missing.example") == ()
    assert len(store) == 1


@pytest.fixture
def fabric():
    registry = IpRegistry()
    index = AnycastIndex()
    autonomous_system = AutonomousSystem(
        asn=64500, name="X", organization="X Hosting",
        registration_country="DE", kind=ASKind.LOCAL_HOSTING,
        pops=(PoP("DE", "Frankfurt", 50.1, 8.7),),
    )
    unicast = registry.allocate_address(autonomous_system, autonomous_system.pops[0])
    anycast_address = registry.allocate_address(
        autonomous_system, autonomous_system.pops[0]
    )
    index.add(AnycastGroup(
        address=anycast_address, asn=64500,
        pops=(PoP("US", "Washington", 38.9, -77.0), PoP("SG", "Singapore", 1.3, 103.8)),
    ))
    return ServingFabric(registry, index), unicast, anycast_address


def test_unicast_site_is_client_independent(fabric):
    serving_fabric, unicast, _ = fabric
    site_a = serving_fabric.server_site(unicast, 0.0, 0.0)
    site_b = serving_fabric.server_site(unicast, 40.0, -70.0)
    assert site_a == site_b
    assert site_a.country == "DE"


def test_anycast_site_depends_on_client(fabric):
    serving_fabric, _, anycast_address = fabric
    from_nyc = serving_fabric.server_site(anycast_address, 40.7, -74.0)
    from_jakarta = serving_fabric.server_site(anycast_address, -6.2, 106.8)
    assert from_nyc.country == "US"
    assert from_jakarta.country == "SG"


def test_unicast_location_rejects_anycast(fabric):
    serving_fabric, _, anycast_address = fabric
    with pytest.raises(ValueError):
        serving_fabric.unicast_location(anycast_address)


def test_icmp_responsiveness_flag(fabric):
    serving_fabric, unicast, _ = fabric
    assert serving_fabric.responds_to_ping(unicast)
    serving_fabric.mark_unresponsive(unicast)
    assert not serving_fabric.responds_to_ping(unicast)


def test_provider_catalog_has_28_entries():
    assert len(GLOBAL_PROVIDERS) == 28
    assert len(provider_keys()) == 28


def test_cloudflare_leads_the_catalog():
    first = GLOBAL_PROVIDERS[0]
    assert first.key == "cloudflare"
    assert first.asn == 13335
    assert first.footprint is WIDE
    assert first.anycast


def test_adoption_priors_decay():
    priors = [spec.adoption_prior for spec in GLOBAL_PROVIDERS]
    assert priors == sorted(priors, reverse=True)
    # Expected country counts roughly match Figure 10's top entries.
    assert round(priors[0] * 61) == 49   # Cloudflare
    assert round(priors[1] * 61) == 31   # Amazon
    assert round(priors[2] * 61) == 28   # Microsoft


def test_catalog_registration_countries():
    assert PROVIDERS_BY_KEY["hetzner"].registration_country == "DE"
    assert PROVIDERS_BY_KEY["ovh"].registration_country == "FR"
    assert PROVIDERS_BY_KEY["voxility"].registration_country == "RO"
