"""Resource-lifetime tests: ``DatasetStore.close`` releases mappings.

Every memoized ``np.memmap`` holds an open file descriptor; before
``close()`` existed, a long-lived process (the query service) touching
many shards accumulated descriptors until the OS limit.  The fd counts
here come from ``/proc/self/fd`` so the tests only run on Linux.
"""

from __future__ import annotations

import os

import pytest

from repro.store import DatasetStore

linux_only = pytest.mark.skipif(
    not os.path.isdir("/proc/self/fd"),
    reason="fd accounting needs /proc/self/fd (Linux)",
)


def _open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


@linux_only
def test_close_releases_descriptors(tiny_store_dir):
    baseline = _open_fds()
    store = DatasetStore(tiny_store_dir)
    for shard in store.shards():
        shard.column("sizes.i64")
        shard.column("category.u8")
    assert _open_fds() > baseline  # the maps really hold descriptors
    store.close()
    assert _open_fds() == baseline


@linux_only
def test_context_manager_releases_descriptors(tiny_store_dir):
    baseline = _open_fds()
    with DatasetStore(tiny_store_dir) as store:
        for shard in store.shards():
            shard.hostname_table()
            shard.column("asns.i64")
    assert _open_fds() == baseline


def test_close_is_idempotent_and_not_final(tiny_store_dir):
    store = DatasetStore(tiny_store_dir)
    shard = next(iter(store.shards()))
    before = shard.column("sizes.i64").copy()
    store.close()
    store.close()  # second close is a no-op, not an error
    # Columns remap on demand after close, with identical contents.
    after = shard.column("sizes.i64")
    assert (before == after).all()
    store.close()


def test_close_with_live_index_views_is_safe(tiny_store_dir):
    """Closing under exported buffers must not raise (BufferError is
    swallowed); the index keeps working off its still-alive views."""
    from repro.analysis.engine import ensure_index

    store = DatasetStore(tiny_store_dir)
    dataset = store.dataset()
    index = ensure_index(dataset)
    summary = index.summary()
    store.close()
    assert index.summary() == summary


@linux_only
def test_strtab_decode_leaves_no_descriptors(tiny_store_dir):
    """Transient string-table maps release immediately, not at GC."""
    store = DatasetStore(tiny_store_dir)
    try:
        baseline = _open_fds()
        for shard in store.shards():
            shard._strtab("urls.idx", "urls.blob")
        assert _open_fds() == baseline
    finally:
        store.close()
