"""Store write/read round-trips, integrity checking and conversions."""

from __future__ import annotations

import json

import pytest

from repro.io import load_dataset, save_dataset
from repro.store import (
    DatasetStore,
    StoreError,
    is_store_path,
    jsonl_to_store,
    load_store_dataset,
    store_to_jsonl,
    write_store,
)
from repro.store.format import MANIFEST_NAME, SHARD_MANIFEST_NAME


def test_write_results_and_layout(store_dir, dataset):
    assert is_store_path(store_dir)
    assert (store_dir / MANIFEST_NAME).is_file()
    codes = sorted(p.name for p in store_dir.iterdir() if p.is_dir())
    assert codes == sorted(dataset.countries)
    for code in codes:
        assert (store_dir / code / SHARD_MANIFEST_NAME).is_file()


def test_refuses_to_clobber(tmp_path, tiny_dataset):
    target = tmp_path / "occupied.store"
    write_store(tiny_dataset, target)
    with pytest.raises(StoreError, match="already exists"):
        write_store(tiny_dataset, target)
    write_store(tiny_dataset, target, overwrite=True)  # explicit is fine


def test_write_is_deterministic(tmp_path, tiny_dataset):
    first = tmp_path / "a.store"
    second = tmp_path / "b.store"
    write_store(tiny_dataset, first)
    write_store(tiny_dataset, second)
    for path in sorted(first.rglob("*")):
        twin = second / path.relative_to(first)
        if path.is_file():
            assert path.read_bytes() == twin.read_bytes(), path.name


def test_records_roundtrip_exactly(store, dataset):
    for code, country_dataset in dataset.countries.items():
        assert store.shard(code).materialize_records() == \
            country_dataset.records


def test_metadata_roundtrip(store, dataset):
    loaded = store.dataset()
    assert set(loaded.countries) == set(dataset.countries)
    for code, original in dataset.countries.items():
        restored = loaded.countries[code]
        assert restored.landing_count == original.landing_count
        assert restored.discarded_url_count == original.discarded_url_count
        assert restored.unresolved_hostnames == original.unresolved_hostnames
        assert restored.depth_histogram == original.depth_histogram
        assert list(restored.depth_histogram) == \
            list(original.depth_histogram)  # insertion order survives
        assert restored.url_count == original.url_count
        assert restored.hostnames == original.hostnames
        assert restored.total_bytes == original.total_bytes
    assert loaded.validation == dataset.validation


def test_verify_passes_on_intact_store(store):
    store.verify()


def test_store_iter_records_streams_everything(store, dataset):
    # Shards keep the dataset's own country order.
    assert list(store.iter_records()) == list(dataset.iter_records())


def test_corrupt_column_detected_by_verify(tmp_path, tiny_dataset):
    target = tmp_path / "mangle.store"
    write_store(tiny_dataset, target)
    victim = next(p for p in target.rglob("sizes.i64")
                  if p.stat().st_size > 0)
    payload = bytearray(victim.read_bytes())
    payload[0] ^= 0xFF
    victim.write_bytes(bytes(payload))
    store = DatasetStore(target)  # sizes unchanged: open still succeeds
    with pytest.raises(StoreError, match="digest mismatch"):
        store.verify()


def test_truncated_column_detected_at_open(tmp_path, tiny_dataset):
    target = tmp_path / "trunc.store"
    write_store(tiny_dataset, target)
    victim = next(p for p in target.rglob("addresses.i64")
                  if p.stat().st_size > 0)
    victim.write_bytes(victim.read_bytes()[:-8])
    with pytest.raises(StoreError, match="size"):
        DatasetStore(target)


def test_tampered_shard_manifest_detected_at_open(tmp_path, tiny_dataset):
    target = tmp_path / "tamper.store"
    write_store(tiny_dataset, target)
    victim = next(target.rglob(SHARD_MANIFEST_NAME))
    manifest = json.loads(victim.read_text())
    manifest["landing_count"] += 1
    victim.write_text(json.dumps(manifest, sort_keys=True, indent=2) + "\n")
    with pytest.raises(StoreError, match="digest mismatch"):
        DatasetStore(target)


def test_wrong_format_version_rejected(tmp_path, tiny_dataset):
    target = tmp_path / "future.store"
    write_store(tiny_dataset, target)
    manifest_path = target / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    manifest["format"] = 999
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(StoreError, match="unsupported store format"):
        DatasetStore(target)


def test_not_a_store_rejected(tmp_path):
    assert not is_store_path(tmp_path / "absent")
    assert not is_store_path(tmp_path)
    with pytest.raises(StoreError, match="not a dataset store"):
        DatasetStore(tmp_path)


def test_jsonl_conversion_byte_identical_on_canonical_files(
    tmp_path, dataset
):
    # save(load(x)) is the canonical jsonl form (records grouped by
    # sorted country); through the store it must round-trip exactly.
    raw = tmp_path / "raw.jsonl"
    save_dataset(dataset, raw)
    canonical = tmp_path / "canonical.jsonl"
    save_dataset(load_dataset(raw), canonical)
    result = jsonl_to_store(canonical, tmp_path / "via.store")
    assert result.record_count == sum(
        cd.url_count for cd in dataset.countries.values()
    )
    back = tmp_path / "back.jsonl"
    assert store_to_jsonl(tmp_path / "via.store", back) == result.record_count
    assert back.read_bytes() == canonical.read_bytes()


def test_store_backed_dataset_saves_original_bytes(tmp_path, store, dataset):
    # The store preserves the dataset's country order, so saving its
    # store-backed twin reproduces the original export byte for byte.
    raw = tmp_path / "raw.jsonl"
    save_dataset(dataset, raw)
    from_store = tmp_path / "from_store.jsonl"
    save_dataset(store.dataset(), from_store)
    assert from_store.read_bytes() == raw.read_bytes()


def test_faulted_dataset_roundtrips(tmp_path):
    from repro import Pipeline, SyntheticWorld, WorldConfig

    config = WorldConfig(seed=13, scale=0.02, countries=("BR", "US"),
                         include_topsites=False, fault_rate=0.1)
    faulted = Pipeline(SyntheticWorld.generate(config)).run(["BR", "US"])
    assert faulted.faults.countries  # the run actually faulted
    target = tmp_path / "faulted.store"
    write_store(faulted, target)
    loaded = load_store_dataset(target)
    assert loaded.faults.to_dict() == faulted.faults.to_dict()
    assert list(loaded.iter_records()) == list(faulted.iter_records())
