"""Store-backed index == scan-built index, without records.

The equivalence suite (tests/analysis/test_engine_equivalence.py) pins
index-backed analyses to the record-loop baselines; this module pins the
:class:`~repro.store.StoreBackedIndex` to the scan-built
:class:`~repro.analysis.engine.AnalysisIndex` over the same dataset --
same tables, same floats, same orderings -- and asserts the whole paper
report renders without materializing a single record.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    crossborder,
    diversification,
    hosting,
    providers,
    registration,
    resilience,
)
from repro.analysis.engine import ensure_index
from repro.reporting.paper_report import render_paper_report
from repro.store import load_store_dataset
from repro.store.index import StoreBackedIndex, _ChunkedColumn


@pytest.fixture(scope="module")
def store_dataset(store_dir):
    return load_store_dataset(store_dir)


@pytest.fixture(scope="module")
def store_index(store_dataset) -> StoreBackedIndex:
    index = ensure_index(store_dataset)
    assert isinstance(index, StoreBackedIndex)
    return index


@pytest.fixture(scope="module")
def scan_index(dataset):
    return ensure_index(dataset)


def test_interners_match(store_index, scan_index):
    assert store_index._countries.table == scan_index._countries.table
    assert store_index._organizations.table == \
        scan_index._organizations.table
    assert store_index._spans == scan_index._spans


def test_columns_match(store_index, scan_index):
    for name in ("sizes", "addresses", "asns", "categories", "gov",
                 "anycast", "countries", "registered", "server",
                 "organizations"):
        ours = getattr(store_index._cols, name)
        reference = getattr(scan_index._cols, name)
        assert len(ours) == len(reference)
        assert np.array_equal(ours[0:len(ours)], np.asarray(reference)), name


def test_span_slices_are_zero_copy(store_index):
    for code, _country_id, start, stop in store_index._spans:
        if stop == start:
            continue
        view = store_index._cols.sizes[start:stop]
        # A span-aligned slice is the shard's own (possibly mmapped)
        # array view, never a concatenated copy.
        chunk = store_index._cols.sizes._chunk(
            store_index._cols.sizes._locate(start)
        )
        assert view.base is chunk or view.base is chunk.base


def test_summary_matches(store_index, scan_index, dataset):
    assert store_index.summary() == scan_index.summary()
    assert store_index.summary() == dataset.summarize()


def test_aggregate_tables_match(store_index, scan_index):
    assert store_index._category_table == scan_index._category_table
    assert store_index._location_table == scan_index._location_table
    assert store_index.organization_by_asn() == \
        scan_index.organization_by_asn()
    assert store_index.gov_asns() == scan_index.gov_asns()
    assert store_index.asn_first_seen() == scan_index.asn_first_seen()


def test_analyses_match(store_dataset, dataset):
    assert hosting.global_breakdown(store_dataset) == \
        hosting.global_breakdown(dataset)
    assert hosting.regional_breakdown(store_dataset) == \
        hosting.regional_breakdown(dataset)
    assert registration.global_split(store_dataset) == \
        registration.global_split(dataset)
    assert crossborder.flows(store_dataset, "server") == \
        crossborder.flows(dataset, "server")
    assert providers.global_provider_footprints(store_dataset) == \
        providers.global_provider_footprints(dataset)
    assert diversification.country_network_hhi(store_dataset) == \
        diversification.country_network_hhi(dataset)
    assert resilience.single_points_of_failure(store_dataset) == \
        resilience.single_points_of_failure(dataset)


def test_full_report_matches_without_materializing(store_dir, dataset):
    fresh = load_store_dataset(store_dir)
    assert render_paper_report(fresh) == render_paper_report(dataset)
    materialized = [cd.country for cd in fresh.countries.values()
                    if cd.materialized]
    assert materialized == []  # the whole report ran record-free


def test_record_count_property(store_index, dataset):
    assert store_index.record_count == sum(
        cd.url_count for cd in dataset.countries.values()
    )


def test_lazy_records_still_work(store_dataset, dataset):
    code = next(iter(dataset.countries))
    lazy = store_dataset.countries[code]
    assert not lazy.materialized
    assert lazy.records == dataset.countries[code].records
    assert lazy.materialized


# --------------------------------------------------- chunked column unit

def _column(chunks):
    bounds, loaders, cursor = [], [], 0
    for chunk in chunks:
        data = np.asarray(chunk, dtype=np.int64)
        bounds.append((cursor, cursor + len(data)))
        loaders.append(lambda d=data: d)
        cursor += len(data)
    return _ChunkedColumn(bounds, loaders, cursor, np.int64)


def test_chunked_column_slicing():
    column = _column([[1, 2, 3], [4, 5], [6]])
    assert len(column) == 6
    assert column[0:3].tolist() == [1, 2, 3]
    assert column[3:5].tolist() == [4, 5]
    assert column[1:2].tolist() == [2]
    assert column[0:6].tolist() == [1, 2, 3, 4, 5, 6]  # crosses chunks
    assert column[2:4].tolist() == [3, 4]
    assert column[4:4].tolist() == []
    assert column[0:0].tolist() == []


def test_chunked_column_int_indexing():
    column = _column([[10, 11], [12]])
    assert [column[i] for i in range(3)] == [10, 11, 12]
    assert column[-1] == 12
    with pytest.raises(IndexError):
        column[3]


def test_chunked_column_rejects_strided_slices():
    column = _column([[1, 2, 3]])
    with pytest.raises(ValueError):
        column[0:3:2]
