"""Unit tests for the byte-level column/strtab/section codecs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.store import codec


@pytest.mark.parametrize("kind,values", [
    ("i64", [0, 1, -5, 2**62]),
    ("i32", [0, -1, 2**31 - 1]),
    ("u32", [0, 1, 2**32 - 1]),
    ("u8", [0, 1, 255]),
])
def test_column_roundtrip(kind, values):
    buffer = codec.column_bytes(values, kind)
    assert len(buffer) == len(values) * codec.KIND_ITEMSIZE[kind]
    assert codec.column_view(buffer, kind).tolist() == values


def test_column_view_empty():
    view = codec.column_view(b"", "i64")
    assert view.size == 0 and view.dtype == np.dtype("<i8")


def test_column_view_is_zero_copy():
    buffer = codec.column_bytes([1, 2, 3], "i64")
    view = codec.column_view(buffer, "i64")
    assert view.base is not None  # a view over the buffer, not a copy


@pytest.mark.parametrize("strings", [
    [],
    [""],
    ["a", "b", "a"],
    ["héllo", "wörld", "", "x" * 1000],
])
def test_strtab_roundtrip(strings):
    offsets, blob = codec.strtab_bytes(strings)
    assert codec.strtab_decode(offsets, blob) == strings
    assert codec.strtab_length(offsets) == len(strings)


def test_pack_sections_roundtrip():
    sections = [("a", b"hello"), ("b", b""), ("c", b"\x00\xff" * 10)]
    blob = codec.pack_sections(sections)
    assert codec.unpack_sections(blob) == dict(sections)


@pytest.mark.parametrize("mangle", [
    lambda blob: blob[:3],            # directory size truncated
    lambda blob: blob[:-1],           # payload truncated
    lambda blob: blob + b"x",         # trailing bytes
    lambda blob: b"\xff\xff\xff\xff" + blob[4:],  # absurd directory size
])
def test_unpack_sections_rejects_malformed(mangle):
    blob = codec.pack_sections([("a", b"data")])
    with pytest.raises(ValueError):
        codec.unpack_sections(mangle(blob))


def test_digest_is_blake2b_128():
    assert len(codec.digest(b"")) == 32  # 16 bytes hex
    assert codec.digest(b"a") != codec.digest(b"b")
