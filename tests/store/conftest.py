"""Shared store fixtures: one store per shared world, built once."""

from __future__ import annotations

import pytest

from repro.store import DatasetStore, write_store


@pytest.fixture(scope="session")
def store_dir(tmp_path_factory, dataset):
    """A store written from the shared session dataset."""
    path = tmp_path_factory.mktemp("store") / "world.store"
    write_store(dataset, path)
    return path


@pytest.fixture()
def store(store_dir) -> DatasetStore:
    """A fresh handle on the shared store (cheap: manifests only)."""
    return DatasetStore(store_dir)


@pytest.fixture(scope="session")
def tiny_store_dir(tmp_path_factory, tiny_dataset):
    path = tmp_path_factory.mktemp("store") / "tiny.store"
    write_store(tiny_dataset, path)
    return path
