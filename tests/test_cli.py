"""Tests for the repro-gov command-line interface."""

import pytest

from repro.cli import main


def test_run_writes_dataset(tmp_path, capsys):
    out = tmp_path / "ds.jsonl"
    csv = tmp_path / "ds.csv"
    code = main([
        "run", "--seed", "5", "--scale", "0.05",
        "--countries", "UY", "PY",
        "--out", str(out), "--csv", str(csv),
    ])
    assert code == 0
    captured = capsys.readouterr().out
    assert "measured" in captured
    assert out.exists() and csv.exists()


@pytest.fixture(scope="module")
def saved_dataset(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "ds.jsonl"
    main(["run", "--seed", "5", "--scale", "0.03", "--out", str(path)])
    return path


@pytest.mark.parametrize("section", [
    "summary", "global", "regional", "domestic", "providers",
    "diversification", "full",
])
def test_report_sections(saved_dataset, section, capsys):
    assert main(["report", str(saved_dataset), "--section", section]) == 0
    assert capsys.readouterr().out.strip()


def test_inspect_known_hostname(capsys):
    # gouv.nc exists at any scale and is deterministic.
    assert main(["inspect", "--hostname", "gouv.nc", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "OPT" in out or "opt" in out or "NC" in out


def test_inspect_unknown_hostname(capsys):
    assert main(["inspect", "--hostname", "nope.example",
                 "--scale", "0.02"]) == 1
    assert "unknown hostname" in capsys.readouterr().err


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_run_with_cache_warm_start(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    args = [
        "run", "--seed", "5", "--scale", "0.05",
        "--countries", "UY", "PY",
        "--cache-dir", str(cache_dir),
    ]
    cold = tmp_path / "cold.jsonl"
    assert main(args + ["--out", str(cold)]) == 0
    cold_report = capsys.readouterr().out
    assert "cache: 0 hits, 2 misses" in cold_report

    warm = tmp_path / "warm.jsonl"
    assert main(args + ["--out", str(warm)]) == 0
    warm_report = capsys.readouterr().out
    assert "cache: 2 hits, 0 misses (100% hit rate)" in warm_report
    assert warm.read_bytes() == cold.read_bytes()


def test_run_no_cache_overrides_cache_dir(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    out = tmp_path / "ds.jsonl"
    assert main([
        "run", "--seed", "5", "--scale", "0.05", "--countries", "UY",
        "--cache-dir", str(cache_dir), "--no-cache", "--out", str(out),
    ]) == 0
    assert "cache:" not in capsys.readouterr().out
    assert not list(cache_dir.glob("*/*.partial"))


def test_run_cache_clear(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    base = ["run", "--seed", "5", "--scale", "0.05", "--countries", "UY",
            "--cache-dir", str(cache_dir)]
    assert main(base + ["--out", str(tmp_path / "a.jsonl")]) == 0
    capsys.readouterr()
    assert main(base + ["--cache-clear", "--out", str(tmp_path / "b.jsonl")]) == 0
    out = capsys.readouterr().out
    assert "cache: cleared 1 entries" in out
    assert "1 misses" in out  # cleared, so the run recomputed


def test_run_cache_clear_requires_cache_dir(capsys):
    assert main(["run", "--cache-clear"]) == 2
    assert "--cache-clear requires --cache-dir" in capsys.readouterr().err


def test_run_observed_writes_artifacts_and_identical_dataset(tmp_path,
                                                             capsys):
    import json

    base = ["run", "--seed", "5", "--scale", "0.05",
            "--countries", "UY", "PY"]
    bare = tmp_path / "bare.jsonl"
    assert main(base + ["--out", str(bare)]) == 0
    capsys.readouterr()

    observed = tmp_path / "observed.jsonl"
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    assert main(base + [
        "--out", str(observed), "--manifest",
        "--trace-out", str(trace), "--metrics-out", str(metrics),
    ]) == 0
    out = capsys.readouterr().out
    assert "Run summary:" in out
    assert "Stage timings" in out

    # Observability is zero-perturbation through the CLI too.
    assert observed.read_bytes() == bare.read_bytes()

    trace_data = json.loads(trace.read_text())
    assert trace_data["format"] == 1
    assert trace_data["spans"][0]["name"] == "pipeline.run"
    chrome = json.loads((tmp_path / "trace.chrome.json").read_text())
    assert chrome["traceEvents"][0]["ph"] == "X"
    metrics_data = json.loads(metrics.read_text())
    assert metrics_data["counters"]["geo.addresses"] > 0
    manifest = json.loads((tmp_path / "observed.jsonl.manifest.json")
                          .read_text())
    assert manifest["seed"] == 5
    assert manifest["countries"] == ["PY", "UY"]
    assert set(manifest["stage_seconds"]) == {"total", "scan", "merge",
                                              "finalize"}


def test_run_manifest_requires_out(capsys):
    assert main(["run", "--manifest", "--countries", "UY"]) == 2
    assert "--manifest requires --out" in capsys.readouterr().err


def test_run_progress_heartbeat_on_stderr(capsys):
    assert main(["run", "--seed", "5", "--scale", "0.05",
                 "--countries", "UY", "PY", "--progress"]) == 0
    err = capsys.readouterr().err
    assert "scanned UY" in err
    assert "scanned PY" in err
    assert "[2/2]" in err


def test_verbose_flag_logs_pipeline_progress(capsys):
    assert main(["-v", "run", "--seed", "5", "--scale", "0.05",
                 "--countries", "UY"]) == 0
    err = capsys.readouterr().err
    assert "pipeline run: 1 countries via serial" in err


def test_quiet_flag_suppresses_info_logs(capsys):
    assert main(["-q", "run", "--seed", "5", "--scale", "0.05",
                 "--countries", "UY"]) == 0
    assert "pipeline run" not in capsys.readouterr().err


# -------------------------------------------------------- columnar store

def test_run_store_dir_writes_store(tmp_path, capsys):
    store = tmp_path / "run.store"
    code = main([
        "run", "--seed", "5", "--scale", "0.03",
        "--countries", "UY", "PY", "--store-dir", str(store),
    ])
    assert code == 0
    assert "shards" in capsys.readouterr().out
    from repro.store import is_store_path

    assert is_store_path(store)


def test_convert_roundtrip_and_reports_match(saved_dataset, tmp_path,
                                             capsys):
    store = tmp_path / "conv.store"
    assert main(["convert", str(saved_dataset), str(store),
                 "--verify"]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out and "verified" in out

    assert main(["report", str(store), "--section", "full"]) == 0
    store_report = capsys.readouterr().out
    assert main(["report", str(saved_dataset), "--section", "full"]) == 0
    assert store_report == capsys.readouterr().out

    back = tmp_path / "back.jsonl"
    assert main(["convert", str(store), str(back)]) == 0
    capsys.readouterr()
    # The store wrote canonical (load->save) bytes.
    from repro.io import load_dataset, save_dataset

    canonical = tmp_path / "canonical.jsonl"
    save_dataset(load_dataset(saved_dataset), canonical)
    assert back.read_bytes() == canonical.read_bytes()


def test_convert_refuses_existing_destination(saved_dataset, tmp_path,
                                              capsys):
    store = tmp_path / "exists.store"
    assert main(["convert", str(saved_dataset), str(store)]) == 0
    capsys.readouterr()
    assert main(["convert", str(saved_dataset), str(store)]) == 1
    assert "already exists" in capsys.readouterr().err
    assert main(["convert", str(saved_dataset), str(store),
                 "--overwrite"]) == 0


def test_convert_missing_source_fails(tmp_path, capsys):
    assert main(["convert", str(tmp_path / "nope.jsonl"),
                 str(tmp_path / "out.store")]) == 1
    assert "error" in capsys.readouterr().err


def test_report_summary_matches_between_backends(saved_dataset, tmp_path,
                                                 capsys):
    store = tmp_path / "sum.store"
    assert main(["convert", str(saved_dataset), str(store)]) == 0
    capsys.readouterr()
    assert main(["report", str(saved_dataset)]) == 0
    jsonl_summary = capsys.readouterr().out
    assert main(["report", str(store)]) == 0
    assert capsys.readouterr().out == jsonl_summary


# ---------------------------------------------------- dataset load errors

def test_report_missing_path_exits_cleanly(capsys):
    assert main(["report", "/no/such/dataset.jsonl"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "no such dataset" in err


def test_report_truncated_jsonl_exits_cleanly(saved_dataset, tmp_path,
                                              capsys):
    truncated = tmp_path / "truncated.jsonl"
    raw = saved_dataset.read_bytes()
    truncated.write_bytes(raw[: int(len(raw) * 0.6)])
    assert main(["report", str(truncated)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "Traceback" not in err


def test_report_empty_jsonl_exits_cleanly(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["report", str(empty)]) == 1
    assert "empty dataset" in capsys.readouterr().err


def test_report_corrupt_store_manifest_exits_cleanly(saved_dataset,
                                                     tmp_path, capsys):
    store = tmp_path / "corrupt.store"
    assert main(["convert", str(saved_dataset), str(store)]) == 0
    capsys.readouterr()
    (store / "manifest.json").write_text("{broken")
    assert main(["report", str(store)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "manifest" in err


def test_report_plain_directory_exits_cleanly(tmp_path, capsys):
    assert main(["report", str(tmp_path)]) == 1
    assert "not a dataset store" in capsys.readouterr().err


# ------------------------------------------------------------------ serve

def test_serve_requires_a_dataset_source():
    import pytest

    with pytest.raises(SystemExit):
        main(["serve"])


def test_serve_rejects_both_sources(tmp_path):
    import pytest

    with pytest.raises(SystemExit):
        main(["serve", "--dataset", "a.jsonl", "--store-dir", "b.store"])


def test_serve_missing_dataset_exits_cleanly(capsys):
    assert main(["serve", "--dataset", "/no/such/dataset.jsonl"]) == 1
    assert capsys.readouterr().err.startswith("error:")


def test_serve_rejects_bad_workers(saved_dataset, capsys):
    assert main(["serve", "--dataset", str(saved_dataset),
                 "--workers", "0"]) == 2
    assert "--workers" in capsys.readouterr().err


def test_serve_answers_over_http(saved_dataset, capsys):
    """End-to-end: CLI-started server answers and matches the batch CLI."""
    import json
    import threading
    import urllib.request

    from repro.serve import DatasetService, create_server

    assert main(["report", str(saved_dataset), "--section", "global"]) == 0
    batch = capsys.readouterr().out.rstrip("\n")

    service = DatasetService.open(saved_dataset)
    server = create_server(service, workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        port = server.server_address[1]
        url = f"http://127.0.0.1:{port}/v1/report?section=global"
        with urllib.request.urlopen(url) as response:
            body = json.load(response)
        assert body["text"] == batch
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=5)


# ------------------------------------------------- cross-run observability

@pytest.fixture(scope="module")
def registry_dir(tmp_path_factory):
    """Two registered runs differing only in their seed."""
    registry = tmp_path_factory.mktemp("cli") / "registry"
    for seed in ("5", "6"):
        assert main(["run", "--seed", seed, "--scale", "0.05",
                     "--countries", "UY", "--registry", str(registry)]) == 0
    return registry


def test_run_registry_records_each_execution(tmp_path, capsys):
    registry = tmp_path / "registry"
    args = ["run", "--seed", "5", "--scale", "0.05", "--countries", "UY",
            "--registry", str(registry)]
    assert main(args) == 0
    assert "registry: recorded run #0" in capsys.readouterr().out
    # Re-running the same config appends a new entry: manifests carry
    # measured wall times, so each execution is its own run — exactly
    # what the cross-run trajectory analysis needs.  Both runs share
    # one fingerprint.
    assert main(args) == 0
    assert "registry: recorded run #1" in capsys.readouterr().out

    from repro.obs import RunRegistry

    first, second = RunRegistry(registry).runs()
    assert first.fingerprint == second.fingerprint
    assert first.id != second.id


def test_obs_runs_lists_registered_runs(registry_dir, capsys):
    assert main(["obs", "runs", "--registry", str(registry_dir)]) == 0
    out = capsys.readouterr().out
    assert "Registered runs (2)" in out
    assert "#0" in out and "#1" in out
    assert "serial" in out


def test_obs_runs_json(registry_dir, capsys):
    import json

    assert main(["obs", "runs", "--registry", str(registry_dir),
                 "--json"]) == 0
    runs = json.loads(capsys.readouterr().out)
    assert [run["seq"] for run in runs] == [0, 1]
    assert runs[0]["manifest"]["seed"] == 5
    assert runs[1]["manifest"]["seed"] == 6


def test_obs_diff_names_the_changed_seed(registry_dir, capsys):
    assert main(["obs", "diff", "0", "1",
                 "--registry", str(registry_dir)]) == 0
    out = capsys.readouterr().out
    assert "diff of run #0" in out
    assert "fingerprints differ" in out
    assert "seed" in out


def test_obs_diff_accepts_id_prefixes(registry_dir, capsys):
    import json

    assert main(["obs", "runs", "--registry", str(registry_dir),
                 "--json"]) == 0
    runs = json.loads(capsys.readouterr().out)
    assert main(["obs", "diff", runs[0]["id"][:8], "1",
                 "--registry", str(registry_dir), "--json"]) == 0
    diff = json.loads(capsys.readouterr().out)
    assert diff["config"]["seed"] == {"a": 5, "b": 6}


def test_obs_diff_unknown_ref_exits_cleanly(registry_dir, capsys):
    assert main(["obs", "diff", "0", "99",
                 "--registry", str(registry_dir)]) == 1
    assert "no run #99" in capsys.readouterr().err


def _bench_paths():
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[1]
    return sorted(str(p) for p in root.glob("BENCH_*.json"))


def test_obs_bench_check_passes_on_checked_in_benchmarks(capsys):
    assert main(["obs", "bench", "--check"] + _bench_paths()) == 0
    out = capsys.readouterr().out
    assert "bench gates passed" in out
    assert "FAIL" not in out


def test_obs_bench_check_fails_naming_the_culprit(tmp_path, capsys):
    import json

    source = json.loads(open(_bench_paths()[0]).read())
    source["speedup"] = 0.01
    bad = tmp_path / "BENCH_analysis.json"
    bad.write_text(json.dumps(source))

    assert main(["obs", "bench", "--check", str(bad)]) == 1
    captured = capsys.readouterr()
    assert "FAIL" in captured.out
    assert "bench gates FAILED" in captured.err
    assert "speedup" in captured.err  # the culprit metric is named

    # Without --check the failure is reported but not fatal.
    assert main(["obs", "bench", str(bad)]) == 0


def test_serve_trace_ring_must_be_positive(saved_dataset, tmp_path, capsys):
    assert main(["serve", "--dataset", str(saved_dataset),
                 "--trace-dir", str(tmp_path / "traces"),
                 "--trace-ring", "0"]) == 2
    assert "--trace-ring" in capsys.readouterr().err
