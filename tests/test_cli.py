"""Tests for the repro-gov command-line interface."""

import pytest

from repro.cli import main


def test_run_writes_dataset(tmp_path, capsys):
    out = tmp_path / "ds.jsonl"
    csv = tmp_path / "ds.csv"
    code = main([
        "run", "--seed", "5", "--scale", "0.05",
        "--countries", "UY", "PY",
        "--out", str(out), "--csv", str(csv),
    ])
    assert code == 0
    captured = capsys.readouterr().out
    assert "measured" in captured
    assert out.exists() and csv.exists()


@pytest.fixture(scope="module")
def saved_dataset(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "ds.jsonl"
    main(["run", "--seed", "5", "--scale", "0.03", "--out", str(path)])
    return path


@pytest.mark.parametrize("section", [
    "summary", "global", "regional", "domestic", "providers",
    "diversification", "full",
])
def test_report_sections(saved_dataset, section, capsys):
    assert main(["report", str(saved_dataset), "--section", section]) == 0
    assert capsys.readouterr().out.strip()


def test_inspect_known_hostname(capsys):
    # gouv.nc exists at any scale and is deterministic.
    assert main(["inspect", "--hostname", "gouv.nc", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "OPT" in out or "opt" in out or "NC" in out


def test_inspect_unknown_hostname(capsys):
    assert main(["inspect", "--hostname", "nope.example",
                 "--scale", "0.02"]) == 1
    assert "unknown hostname" in capsys.readouterr().err


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
