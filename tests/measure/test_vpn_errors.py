"""VpnCatalog error quality and the alternate-exit (rank) API."""

from __future__ import annotations

import pytest

from repro.measure.vpn import UnknownVantageError, VpnCatalog


@pytest.fixture(scope="module")
def catalog() -> VpnCatalog:
    return VpnCatalog()


def test_unknown_country_error_names_code_and_lists_catalog(catalog):
    with pytest.raises(UnknownVantageError) as excinfo:
        catalog.vantage_for("XX")
    message = str(excinfo.value)
    assert "no VPN vantage for country 'XX'" in message
    assert "US" in message and "DE" in message
    assert f"{len(catalog)} countries available" in message


def test_error_is_still_a_keyerror(catalog):
    # Pre-existing call sites catch KeyError; the richer error must
    # keep satisfying them.
    with pytest.raises(KeyError):
        catalog.vantages_of("ZZ")
    # ...without KeyError's repr()-quoting mangling the message.
    error = UnknownVantageError("plain words")
    assert str(error) == "plain words"
    assert error.message == "plain words"


def test_lookups_normalize_case(catalog):
    assert catalog.vantage_for("us") == catalog.vantage_for("US")
    assert catalog.vantages_of("de") == catalog.vantages_of("DE")


def test_primary_exit_is_rank_zero(catalog):
    assert catalog.vantage_at("US", 0) == catalog.vantage_for("US")
    exits = catalog.vantages_of("US")
    assert exits[0] == catalog.vantage_for("US")
    assert len({vantage.city for vantage in exits}) == len(exits)
    assert all(vantage.country == "US" for vantage in exits)
    assert all(
        vantage.provider == exits[0].provider for vantage in exits
    )


def test_exhausted_rank_error_lists_the_real_exits(catalog):
    exits = catalog.vantages_of("SG")
    with pytest.raises(UnknownVantageError) as excinfo:
        catalog.vantage_at("SG", len(exits))
    message = str(excinfo.value)
    assert f"vantage rank {len(exits)} exhausted for SG" in message
    assert f"{len(exits)} exit(s) available" in message
    for vantage in exits:
        assert vantage.city in message


def test_negative_rank_is_a_value_error(catalog):
    with pytest.raises(ValueError, match=">= 0"):
        catalog.vantage_at("US", -1)
    with pytest.raises(ValueError, match=">= 0"):
        catalog.fallback_vantage("US", -1)


def test_alternate_count_matches_exit_list(catalog):
    for code in ("US", "DE", "SG"):
        assert catalog.alternate_count(code) == \
            len(catalog.vantages_of(code)) - 1


def test_fallback_moves_to_the_next_exit_when_one_exists(catalog):
    exits = catalog.vantages_of("US")
    assert len(exits) >= 2
    assert catalog.fallback_vantage("US", 0) == exits[1]
    # The last rank has nowhere further to go: it falls back to itself.
    last = len(exits) - 1
    assert catalog.fallback_vantage("US", last) == exits[last]


def test_fallback_of_single_exit_country_is_the_primary(catalog):
    exits = catalog.vantages_of("SG")
    assert len(exits) == 1
    assert catalog.fallback_vantage("SG", 0) == exits[0]
    with pytest.raises(UnknownVantageError, match="exhausted"):
        catalog.fallback_vantage("SG", 1)
