"""Tests for IPInfo, MAnycast2, HOIHO, IPmap and PeeringDB substrates."""

import pytest

from repro.measure.hoiho import CITY_TOKENS, HoihoExtractor, PtrTable, normalize_city
from repro.measure.ipinfo import IpInfoDatabase, IpInfoEntry
from repro.measure.ipmap import IpMapCache
from repro.measure.manycast import MAnycastSnapshot
from repro.measure.peeringdb import PeeringDb, PeeringDbRecord


def test_ipinfo_roundtrip():
    db = IpInfoDatabase()
    entry = IpInfoEntry(address=42, country="BR", city="Brasilia",
                        lat=-15.8, lon=-47.9)
    db.add(entry)
    assert db.lookup(42) is entry
    assert db.country_of(42) == "BR"
    assert db.lookup(43) is None
    assert db.country_of(43) is None
    assert len(db) == 1
    assert list(db) == [entry]


def test_manycast_flags():
    snapshot = MAnycastSnapshot([1, 2])
    snapshot.flag(3)
    assert snapshot.is_anycast(1)
    assert snapshot.is_anycast(3)
    assert not snapshot.is_anycast(4)
    assert len(snapshot) == 3


def test_normalize_city():
    assert normalize_city("Sao Paulo") == "saopaulo"
    assert normalize_city("Ho Chi Minh City") == "hochiminhcity"


def test_city_tokens_cover_capitals():
    assert CITY_TOKENS["brasilia"] == "BR"
    assert CITY_TOKENS["noumea"] == "NC"
    assert CITY_TOKENS["frankfurt"] == "DE"


def test_hoiho_city_dialect():
    table = PtrTable()
    table.add(1, "ae3.cr2.frankfurt1.de.bb.hostline-de.net")
    extractor = HoihoExtractor(table)
    assert extractor.country_hint(1) == "DE"


def test_hoiho_ntt_dialect():
    table = PtrTable()
    table.add(2, "ge-0-0-1.a15.tokyjp01.provider-gin.net")
    extractor = HoihoExtractor(table)
    assert extractor.country_hint(2) == "JP"


def test_hoiho_bare_country_label():
    table = PtrTable()
    table.add(3, "core1.site9.us.backbone.example.net")
    extractor = HoihoExtractor(table)
    assert extractor.country_hint(3) == "US"


def test_hoiho_opaque_name_misses():
    table = PtrTable()
    table.add(4, "host-1234.opaque.example.net")
    extractor = HoihoExtractor(table)
    assert extractor.country_hint(4) is None


def test_hoiho_missing_ptr():
    extractor = HoihoExtractor(PtrTable())
    assert extractor.country_hint(99) is None


def test_hoiho_does_not_read_tld_as_country():
    table = PtrTable()
    # ".de" only appears as the TLD -- it must not be treated as a hint.
    table.add(5, "mail.someisp.de")
    extractor = HoihoExtractor(table)
    assert extractor.country_hint(5) is None


def test_ipmap_cache():
    cache = IpMapCache()
    cache.store(7, "FR")
    assert cache.lookup(7) == "FR"
    assert cache.lookup(8) is None
    assert cache.coverage == 1


def test_peeringdb_records():
    db = PeeringDb()
    record = PeeringDbRecord(
        asn=26810, name="HHS", org="U.S. Dept. of Health and Human Services",
        website="https://www.hhs.gov", notes="",
    )
    db.add(record)
    assert db.lookup(26810) is record
    assert db.lookup(1) is None
    assert "U.S. Dept. of Health and Human Services" in record.text_fields()
    with pytest.raises(ValueError):
        db.add(record)
    assert len(db) == 1
    assert list(db) == [record]
