"""HOIHO accuracy over the whole generated PTR corpus."""

from repro.measure.hoiho import HoihoExtractor


def test_extractor_never_returns_wrong_country(world):
    """Whenever the extractor produces a hint for a generated PTR name, the
    hint matches the address's true PoP country -- HOIHO's regexes are
    precise even though they are not complete."""
    extractor = HoihoExtractor(world.ptr_table)
    hits = misses = wrong = 0
    for address, _name in world.ptr_table.items():
        try:
            truth = world.fabric.unicast_location(address).country
        except ValueError:
            continue  # anycast addresses carry no single location
        hint = extractor.country_hint(address)
        if hint is None:
            misses += 1
        elif hint == truth:
            hits += 1
        else:
            wrong += 1
    assert hits > 0
    assert wrong == 0
    # Opaque-dialect names are the only misses, a small configured share.
    assert misses / (hits + misses) < 0.25


def test_ptr_coverage_tracks_config(world):
    config = world.config
    expected = config.ptr_city_rate + config.ptr_ntt_rate + config.ptr_opaque_rate
    unicast_total = sum(
        1 for truth in world.truth.hosts.values() if not truth.anycast
    )
    # PTR names exist for roughly the configured share of addresses
    # (addresses are fewer than hostnames due to pooling, so compare against
    # the address population).
    addresses = {
        truth.address for truth in world.truth.hosts.values() if not truth.anycast
    }
    with_ptr = sum(1 for a in addresses if world.ptr_table.lookup(a) is not None)
    assert with_ptr / len(addresses) > expected - 0.25
    assert unicast_total >= len(addresses)
