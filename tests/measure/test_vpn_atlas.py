"""Tests for VPN vantage points and the Atlas probing client."""

import random

import pytest

from repro.datagen.seeds import derive_rng
from repro.measure.atlas import AtlasClient
from repro.measure.vpn import VpnCatalog
from repro.netsim.anycast import AnycastGroup, AnycastIndex
from repro.netsim.asn import ASKind, AutonomousSystem, PoP
from repro.netsim.fabric import ServingFabric
from repro.netsim.latency import LatencyModel, country_threshold_ms
from repro.netsim.registry import IpRegistry
from repro.world.cities import all_location_codes
from repro.world.geography import road_span_km


def test_vpn_catalog_covers_sample():
    catalog = VpnCatalog()
    assert len(catalog) == 61
    vantage = catalog.vantage_for("br")
    assert vantage.country == "BR"
    assert vantage.provider == "NordVPN"
    assert vantage.city == "Brasilia"
    assert catalog.validate_location(vantage)


def test_vpn_provider_usage_matches_table9():
    usage = VpnCatalog().provider_usage()
    assert usage == {"NordVPN": 49, "Surfshark": 10, "Hotspot Shield": 2}


@pytest.fixture
def probing_setup():
    registry = IpRegistry()
    index = AnycastIndex()
    provider = AutonomousSystem(
        asn=64501, name="HOST-DE", organization="Host DE",
        registration_country="DE", kind=ASKind.LOCAL_HOSTING,
        pops=(PoP("DE", "Frankfurt", 50.1, 8.7),),
    )
    domestic = registry.allocate_address(provider, provider.pops[0])
    silent = registry.allocate_address(provider, provider.pops[0])
    anycast_address = registry.allocate_address(provider, provider.pops[0])
    index.add(AnycastGroup(
        address=anycast_address, asn=64501,
        pops=(PoP("DE", "Frankfurt", 50.1, 8.7), PoP("SG", "Singapore", 1.3, 103.8)),
    ))
    fabric = ServingFabric(registry, index)
    fabric.mark_unresponsive(silent)
    atlas = AtlasClient(
        fabric=fabric,
        latency=LatencyModel(derive_rng(1, "latency")),
        country_codes=all_location_codes(),
        rng=derive_rng(1, "atlas"),
    )
    return atlas, domestic, silent, anycast_address


def test_probes_exist_in_every_location(probing_setup):
    atlas, *_ = probing_setup
    for code in ("DE", "SG", "NC", "US"):
        assert atlas.probes_in(code), code
    assert len(atlas.probes_in("US")) <= 5


def test_domestic_ping_below_threshold(probing_setup):
    atlas, domestic, _, _ = probing_setup
    rtt = atlas.min_rtt_from_country("DE", domestic)
    assert rtt is not None
    assert rtt < country_threshold_ms(road_span_km("DE"))


def test_foreign_ping_exceeds_threshold(probing_setup):
    atlas, domestic, _, _ = probing_setup
    rtt = atlas.min_rtt_from_country("SG", domestic)
    assert rtt is not None
    assert rtt > country_threshold_ms(road_span_km("SG"))


def test_unresponsive_target_times_out(probing_setup):
    atlas, _, silent, _ = probing_setup
    probe = atlas.probes_in("DE")[0]
    result = atlas.ping(probe, silent)
    assert not result.responded
    assert result.min_rtt_ms is None
    assert atlas.min_rtt_from_country("DE", silent) is None


def test_anycast_ping_hits_catchment(probing_setup):
    atlas, _, _, anycast_address = probing_setup
    rtt_de = atlas.min_rtt_from_country("DE", anycast_address)
    rtt_sg = atlas.min_rtt_from_country("SG", anycast_address)
    # Both in-country: each probe reaches its local anycast site.
    assert rtt_de < country_threshold_ms(road_span_km("DE"))
    assert rtt_sg < country_threshold_ms(road_span_km("SG"))


def test_nearest_probe_finds_host_country(probing_setup):
    atlas, domestic, _, _ = probing_setup
    best = atlas.nearest_probe_rtt(domestic)
    assert best is not None
    assert best.probe.country == "DE"


def test_nearest_probe_none_for_silent_target(probing_setup):
    atlas, _, silent, _ = probing_setup
    assert atlas.nearest_probe_rtt(silent) is None


def test_ping_count_controls_train_length(probing_setup):
    atlas, domestic, _, _ = probing_setup
    probe = atlas.probes_in("DE")[0]
    result = atlas.ping(probe, domestic, count=7)
    assert len(result.rtts_ms) == 7
