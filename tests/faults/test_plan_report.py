"""Unit tests for the fault plan and the FaultReport monoid."""

import dataclasses

import pytest

from repro.faults import (
    FAULT_DOMAINS,
    FAULT_PROFILE_NAMES,
    DomainTally,
    Episode,
    FaultPlan,
    FaultReport,
    FaultSession,
    merge_fault_reports,
)
from repro.faults.plan import UNRETRYABLE_DOMAINS


# ------------------------------------------------------------------- plan

def test_plan_decisions_are_pure_and_order_independent():
    plan = FaultPlan(rate=0.3, seed=99)
    keys = [("BR", 1, 2), ("US", "host"), ("FR",)]
    first = [plan.attempt_fails("probe", key, 0) for key in keys]
    second = [plan.attempt_fails("probe", key, 0) for key in reversed(keys)]
    assert first == list(reversed(second))


def test_plan_rate_zero_never_fails():
    plan = FaultPlan(rate=0.0)
    assert not plan.enabled
    assert not any(
        plan.attempt_fails(domain, ("k", index), 0)
        for domain in FAULT_DOMAINS
        for index in range(200)
    )


def test_plan_rate_one_always_fails():
    plan = FaultPlan(rate=1.0, seed=5)
    assert all(
        plan.attempt_fails(domain, ("k", index), 0)
        for domain in FAULT_DOMAINS
        if plan.rate_for(domain) >= 1.0  # mixed halves congestion
        for index in range(50)
    )


def test_profiles_scope_the_domains():
    vpn_only = FaultPlan(rate=0.5, profile="vpn", seed=1)
    assert vpn_only.rate_for("vpn") == 0.5
    for domain in FAULT_DOMAINS:
        if domain != "vpn":
            assert vpn_only.rate_for(domain) == 0.0


@pytest.mark.parametrize("profile", FAULT_PROFILE_NAMES)
def test_every_profile_is_constructible(profile):
    FaultPlan(rate=0.1, profile=profile)


def test_plan_validation():
    with pytest.raises(ValueError, match="probability"):
        FaultPlan(rate=1.5)
    with pytest.raises(ValueError, match="profile"):
        FaultPlan(rate=0.1, profile="chaos-monkey")
    with pytest.raises(ValueError, match="max_retries"):
        FaultPlan(rate=0.1, max_retries=-1)


def test_plan_empirical_rate_tracks_requested_rate():
    plan = FaultPlan(rate=0.2, seed=3)
    trials = 4000
    failures = sum(
        plan.attempt_fails("dns", ("host", index), 0) for index in range(trials)
    )
    assert 0.15 < failures / trials < 0.25


# ----------------------------------------------------------------- report

def _report(*triples):
    report = FaultReport()
    for country, domain, injected, retried, degraded in triples:
        tally = report.tally(country, domain)
        tally.injected += injected
        tally.retried += retried
        tally.degraded += degraded
    return report


def test_merge_is_commutative():
    a = _report(("BR", "dns", 3, 3, 0), ("US", "vpn", 2, 1, 1))
    b = _report(("BR", "dns", 1, 0, 1), ("FR", "probe", 4, 4, 0))
    assert a.merge(b) == b.merge(a)


def test_merge_is_associative():
    a = _report(("BR", "dns", 3, 3, 0))
    b = _report(("BR", "dns", 1, 0, 1), ("US", "vpn", 2, 1, 1))
    c = _report(("FR", "probe", 5, 4, 1))
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


def test_empty_report_is_identity():
    a = _report(("BR", "dns", 3, 3, 0))
    assert a.merge(FaultReport()) == a
    assert FaultReport().merge(a) == a
    assert not FaultReport()


def test_merge_sums_componentwise():
    a = _report(("BR", "dns", 3, 3, 0))
    b = _report(("BR", "dns", 1, 0, 1))
    merged = a.merge(b)
    tally = merged.countries["BR"]["dns"]
    assert (tally.injected, tally.retried, tally.degraded) == (4, 3, 1)
    assert merged.consistent


def test_merge_fault_reports_reduces_any_iterable():
    reports = [_report(("BR", "dns", 1, 1, 0)) for _ in range(4)]
    merged = merge_fault_reports(reports)
    assert merged.countries["BR"]["dns"].injected == 4
    assert merge_fault_reports([]) == FaultReport()


def test_report_round_trips_through_dict():
    report = _report(("BR", "dns", 3, 3, 0), ("US", "vpn", 2, 1, 1))
    report.tally("US", "vpn").backoff_ms = 300.0
    assert FaultReport.from_dict(report.to_dict()) == report


def test_consistency_invariant():
    good = DomainTally(injected=4, retried=3, recovered=1, degraded=1)
    assert good.consistent
    bad = DomainTally(injected=4, retried=1, degraded=1)
    assert not bad.consistent
    assert not _report(("BR", "dns", 4, 1, 1)).consistent


# ---------------------------------------------------------------- session

def test_session_requires_enabled_plan():
    with pytest.raises(ValueError, match="enabled"):
        FaultSession(FaultPlan(rate=0.0), "BR")


def test_session_memoizes_episodes_and_counts_once():
    session = FaultSession(FaultPlan(rate=1.0, seed=2), "BR")
    first = session.episode("dns", "host.gov")
    again = session.episode("dns", "host.gov")
    assert first is again
    tally = session.report.countries["BR"]["dns"]
    assert tally.injected == first.injected  # one episode, tallied once


def test_session_rate_one_always_degrades_with_full_retries():
    plan = FaultPlan(rate=1.0, seed=2, max_retries=2, backoff_base_ms=100.0)
    session = FaultSession(plan, "BR")
    episode = session.episode("whois", 0xDEADBEEF)
    assert episode == Episode(injected=3, retried=2, recovered=False,
                              degraded=True, backoff_ms=300.0)
    assert session.clock.now_ms == 300.0  # 100 + 200, simulated only


def test_unretryable_domains_fail_without_retries():
    # the "probes" profile applies the full rate to congestion
    session = FaultSession(FaultPlan(rate=1.0, profile="probes", seed=2), "BR")
    episode = session.episode("congestion", 7, 1)
    assert episode.degraded and episode.retried == 0 and episode.injected == 1
    assert "congestion" in UNRETRYABLE_DOMAINS


def test_session_report_is_always_consistent():
    plan = FaultPlan(rate=0.4, seed=11)
    session = FaultSession(plan, "DE")
    for index in range(300):
        session.operation_fails("dns", f"host-{index}.gov")
        session.operation_fails("whois", index)
        session.congestion_ms(index % 7, index)
    report = session.report
    assert report.consistent
    total = report.total()
    assert total.injected == total.retried + total.degraded
    assert total.injected > 0  # at 40% something must have fired


def test_country_scoped_decisions_differ_between_sessions():
    plan = FaultPlan(rate=0.5, seed=17)
    outcomes_a = [FaultSession(plan, "BR").operation_fails("dns", i)
                  for i in range(64)]
    outcomes_b = [FaultSession(plan, "US").operation_fails("dns", i)
                  for i in range(64)]
    assert outcomes_a != outcomes_b


def test_episode_is_frozen():
    episode = Episode(injected=1, retried=1, recovered=True, degraded=False,
                      backoff_ms=100.0)
    with pytest.raises(dataclasses.FrozenInstanceError):
        episode.injected = 2
