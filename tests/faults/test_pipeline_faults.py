"""Pipeline-level fault-injection contracts.

Three guarantees anchor the layer:

1. rate 0 is *byte-identical* to a fault-free run (the faulted code
   paths are never entered);
2. a faulted run is deterministic for a fixed ``fault_seed`` and
   bit-identical across serial/thread/process executors;
3. unrecoverable faults degrade gracefully — the run completes and the
   losses land in the methodology's existing fallbacks, fully accounted
   by a consistent :class:`FaultReport`.
"""

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.core.geolocation import ValidationMethod
from repro.exec import make_executor
from repro.faults import FaultPlan, FaultReport
from repro.io import save_dataset

COUNTRIES = ("BR", "US", "FR", "MA")
FAULT_RATE = 0.08


def _config(**overrides) -> WorldConfig:
    base = dict(seed=13, scale=0.03, countries=COUNTRIES,
                include_topsites=False)
    base.update(overrides)
    return WorldConfig(**base)


def _run(config: WorldConfig, executor_name: str = "serial", workers=None):
    world = SyntheticWorld.generate(config)
    executor = make_executor(executor_name, workers=workers)
    try:
        return Pipeline(world).run(list(COUNTRIES), executor=executor)
    finally:
        executor.close()


@pytest.fixture(scope="module")
def faulted_dataset():
    return _run(_config(fault_rate=FAULT_RATE))


def _bytes_of(dataset, tmp_path, name) -> bytes:
    path = tmp_path / name
    save_dataset(dataset, path)
    return path.read_bytes()


# -------------------------------------------------------------- rate zero

def test_rate_zero_is_byte_identical(tmp_path):
    plain = _run(_config())
    zeroed = _run(_config(fault_rate=0.0, fault_seed=1234))
    assert _bytes_of(plain, tmp_path, "plain.jsonl") == \
        _bytes_of(zeroed, tmp_path, "zeroed.jsonl")
    assert zeroed.faults == FaultReport()


def test_rate_zero_run_creates_no_sessions():
    world = SyntheticWorld.generate(_config())
    pipeline = Pipeline(world)
    assert not pipeline.fault_plan.enabled
    partial = pipeline.scan_partial("BR")
    assert partial.faults == FaultReport()


# ---------------------------------------------------------- determinism

def test_faulted_run_is_deterministic_for_fixed_fault_seed(tmp_path,
                                                           faulted_dataset):
    repeat = _run(_config(fault_rate=FAULT_RATE))
    assert _bytes_of(faulted_dataset, tmp_path, "first.jsonl") == \
        _bytes_of(repeat, tmp_path, "repeat.jsonl")
    assert repeat.faults == faulted_dataset.faults


def test_fault_seed_varies_failures_with_the_world_fixed(faulted_dataset):
    other = _run(_config(fault_rate=FAULT_RATE, fault_seed=777))
    assert other.faults != faulted_dataset.faults


@pytest.mark.parametrize("executor_name,workers",
                         [("threads", 2), ("threads", 4), ("processes", 2)])
def test_faulted_runs_identical_across_executors(tmp_path, faulted_dataset,
                                                 executor_name, workers):
    parallel = _run(_config(fault_rate=FAULT_RATE), executor_name, workers)
    assert _bytes_of(parallel, tmp_path, "parallel.jsonl") == \
        _bytes_of(faulted_dataset, tmp_path, "serial.jsonl")
    assert parallel.faults == faulted_dataset.faults


# ----------------------------------------------------------- degradation

def test_faulted_run_completes_with_consistent_report(faulted_dataset):
    report = faulted_dataset.faults
    assert report.consistent
    total = report.total()
    assert total.injected > 0
    assert total.injected == total.retried + total.degraded
    assert set(report.countries) <= set(COUNTRIES)


def test_degradations_land_in_existing_fallbacks():
    """Lost dns/whois lookups surface as unresolved hostnames.

    The ``lookups`` profile leaves the crawl untouched, so the hostname
    universe matches the fault-free run and lost lookups can only move
    hostnames from resolved to unresolved.
    """
    plain = _run(_config())
    faulted = _run(_config(fault_rate=0.2, fault_profile="lookups"))
    domains = faulted.faults.domain_totals()
    assert domains.get("dns") or domains.get("whois")
    for code in COUNTRIES:
        before = set(plain.countries[code].unresolved_hostnames)
        after = set(faulted.countries[code].unresolved_hostnames)
        assert before <= after
    total_lost = sum(
        len(faulted.countries[code].unresolved_hostnames)
        - len(plain.countries[code].unresolved_hostnames)
        for code in COUNTRIES
    )
    assert total_lost > 0


def test_lookup_profile_cannot_touch_probes():
    dataset = _run(_config(fault_rate=0.2, fault_profile="lookups"))
    domains = dataset.faults.domain_totals()
    assert not {"probe", "congestion", "vpn"} & set(domains)
    assert {"dns", "whois", "ipinfo", "peeringdb"} & set(domains)


def test_vpn_profile_reselects_vantage_without_crashing():
    dataset = _run(_config(fault_rate=0.9, fault_profile="vpn"))
    domains = dataset.faults.domain_totals()
    assert set(domains) == {"vpn"}
    assert domains["vpn"].degraded > 0  # at 90%, some exits must flap out
    # the run still measured every country
    assert set(dataset.countries) == set(COUNTRIES)
    assert all(ds.records for ds in dataset.countries.values())


def test_probe_faults_produce_unresolved_validations():
    heavy = _run(_config(fault_rate=0.6, fault_profile="probes"))
    methods = {record.validation for record in heavy.iter_records()}
    assert ValidationMethod.UNRESOLVED in methods
    assert heavy.faults.consistent


# ----------------------------------------------------------- persistence

def test_fault_report_round_trips_through_io(tmp_path, faulted_dataset):
    from repro.io import load_dataset

    path = tmp_path / "faulted.jsonl"
    save_dataset(faulted_dataset, path)
    loaded = load_dataset(path)
    assert loaded.faults == faulted_dataset.faults


def test_explicit_fault_plan_blocks_process_execution():
    world = SyntheticWorld.generate(_config())
    pipeline = Pipeline(world, faults=FaultPlan(rate=0.1, seed=9))
    assert not pipeline.supports_process_execution
    executor = make_executor("processes", workers=1)
    try:
        with pytest.raises(ValueError, match="default geolocator"):
            pipeline.run(["BR"], executor=executor)
    finally:
        executor.close()
