"""Tests for great-circle geometry and road spans."""

import pytest
from hypothesis import given, strategies as st

from repro.world.cities import capital_of, cities_of
from repro.world.countries import COUNTRIES
from repro.world.geography import (
    EARTH_RADIUS_KM,
    ROAD_CIRCUITY_FACTOR,
    country_distance_km,
    country_span_km,
    haversine_km,
    road_span_km,
)

_coords = st.tuples(
    st.floats(min_value=-89.9, max_value=89.9),
    st.floats(min_value=-180.0, max_value=180.0),
)


def test_zero_distance_to_self():
    assert haversine_km(48.9, 2.3, 48.9, 2.3) == 0.0


def test_known_distance_paris_london():
    distance = haversine_km(48.9, 2.3, 51.5, -0.1)
    assert distance == pytest.approx(340, rel=0.05)


def test_antipodal_distance_near_half_circumference():
    distance = haversine_km(0, 0, 0, 180)
    assert distance == pytest.approx(3.14159 * EARTH_RADIUS_KM, rel=0.01)


@given(_coords, _coords)
def test_haversine_symmetry(a, b):
    assert haversine_km(*a, *b) == pytest.approx(haversine_km(*b, *a), rel=1e-9)


@given(_coords, _coords)
def test_haversine_bounds(a, b):
    distance = haversine_km(*a, *b)
    assert 0 <= distance <= 3.1416 * EARTH_RADIUS_KM


@given(_coords, _coords, _coords)
def test_haversine_triangle_inequality(a, b, c):
    ab = haversine_km(*a, *b)
    bc = haversine_km(*b, *c)
    ac = haversine_km(*a, *c)
    assert ac <= ab + bc + 1e-6


def test_country_span_positive_everywhere():
    for code in COUNTRIES:
        assert country_span_km(code) > 0


def test_city_states_get_nominal_span():
    assert country_span_km("SG") == 50.0
    assert country_span_km("HK") == 50.0


def test_span_covers_all_city_pairs():
    for code in ("US", "BR", "RU", "CL"):
        cities = cities_of(code)
        span = country_span_km(code)
        for i, a in enumerate(cities):
            for b in cities[i + 1:]:
                assert haversine_km(a.lat, a.lon, b.lat, b.lon) <= span + 1e-9


def test_road_span_applies_circuity():
    assert road_span_km("BR") == pytest.approx(
        country_span_km("BR") * ROAD_CIRCUITY_FACTOR
    )


def test_country_distance_uses_capitals():
    distance = country_distance_km("FR", "GB")
    capital_fr = capital_of("FR")
    capital_gb = capital_of("GB")
    assert distance == pytest.approx(
        haversine_km(capital_fr.lat, capital_fr.lon, capital_gb.lat, capital_gb.lon)
    )


def test_russia_span_is_continental():
    assert country_span_km("RU") > 2500
