"""Tests for the country sample (Table 9 constants)."""

import pytest

from repro.world.countries import (
    COUNTRIES,
    WORLD_INTERNET_USERS_M,
    countries_in_region,
    eu_members,
    get_country,
    iter_countries,
)
from repro.world.regions import Continent, Region


def test_sample_has_61_countries():
    assert len(COUNTRIES) == 61


def test_regional_composition_matches_table9():
    expected = {
        Region.NA: 2,
        Region.LAC: 8,
        Region.ECA: 29,
        Region.MENA: 5,
        Region.SSA: 2,
        Region.SA: 3,
        Region.EAP: 12,
    }
    for region, count in expected.items():
        assert len(countries_in_region(region)) == count, region


def test_internet_population_coverage_exceeds_82_percent():
    total = sum(c.internet_pop_share for c in COUNTRIES.values())
    assert total == pytest.approx(82.70, abs=1.5)


def test_vpn_provider_counts_match_paper():
    providers = {}
    for country in COUNTRIES.values():
        providers[country.vpn_provider] = providers.get(country.vpn_provider, 0) + 1
    assert providers["NordVPN"] == 49
    assert providers["Surfshark"] == 10
    assert providers["Hotspot Shield"] == 2


def test_get_country_is_case_insensitive():
    assert get_country("br") is get_country("BR")


def test_get_country_unknown_raises():
    with pytest.raises(KeyError):
        get_country("XX")


def test_table8_totals_are_close_to_paper():
    # The per-country rows of Table 8 sum close to -- but not exactly to --
    # the Table 3 headline numbers (the paper's own rows don't reconcile
    # perfectly either); we require agreement within ~8%.
    landing = sum(c.landing_urls for c in COUNTRIES.values())
    internal = sum(c.internal_urls for c in COUNTRIES.values())
    hostnames = sum(c.hostnames for c in COUNTRIES.values())
    assert landing == pytest.approx(15_878, rel=0.08)
    assert internal == pytest.approx(1_017_865, rel=0.08)
    assert hostnames == pytest.approx(13_483, rel=0.08)


def test_korea_has_empty_dataset_rows():
    korea = get_country("KR")
    assert korea.landing_urls == 0
    assert korea.internal_urls == 0
    assert korea.hostnames == 0


def test_internet_users_derived_from_share():
    us = get_country("US")
    assert us.internet_users_m == pytest.approx(
        5.76 / 100 * WORLD_INTERNET_USERS_M
    )


def test_eu_membership_plausible():
    members = {c.code for c in eu_members()}
    assert "DE" in members and "FR" in members and "EE" in members
    assert "GB" not in members  # post-Brexit
    assert "NO" not in members and "CH" not in members
    assert len(members) == 17


def test_every_country_has_continent_and_cities():
    from repro.world.cities import cities_of

    for country in iter_countries():
        assert isinstance(country.continent, Continent)
        assert len(cities_of(country.code)) >= 1


def test_gov_suffix_conventions():
    assert "gov.br" in get_country("BR").gov_suffixes
    assert "gub.uy" in get_country("UY").gov_suffixes
    assert "gouv.fr" in get_country("FR").gov_suffixes
    # Countries documented as having no convention (Section 8).
    for code in ("DE", "NL", "SE", "DK", "NO", "EE", "HU"):
        assert get_country(code).gov_suffixes == ()


def test_appendix_e_features_present_and_positive():
    for country in iter_countries():
        assert country.gdp_per_capita_kusd > 0
        assert 0 < country.nri < 100
        assert 0 < country.efi < 100
        assert 0 < country.idi < 10
