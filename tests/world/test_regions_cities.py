"""Tests for the regional taxonomy and city data."""

import pytest

from repro.world.cities import (
    CITIES,
    EXTRA_TERRITORIES,
    all_location_codes,
    capital_of,
    cities_of,
)
from repro.world.countries import COUNTRIES
from repro.world.regions import REGION_ORDER, Continent, Region


def test_seven_regions():
    assert len(Region) == 7
    assert len(REGION_ORDER) == 7
    assert set(REGION_ORDER) == set(Region)


def test_six_continents():
    assert len(Continent) == 6


def test_region_codes_match_paper_abbreviations():
    assert Region.ECA.code == "ECA"
    assert Region.MENA.code == "MENA"


def test_city_data_covers_every_sample_country():
    assert set(CITIES) == set(COUNTRIES)


def test_extra_territories_bring_total_to_68():
    assert len(all_location_codes()) == 68


def test_extra_territories_include_new_caledonia():
    assert "NC" in EXTRA_TERRITORIES
    name, region, continent, city = EXTRA_TERRITORIES["NC"]
    assert region is Region.EAP
    assert continent is Continent.OCEANIA
    assert city.name == "Noumea"


def test_capitals_are_first_city():
    assert capital_of("FR").name == "Paris"
    assert capital_of("US").name == "Washington"
    assert capital_of("BR").name == "Brasilia"


def test_cities_of_unknown_code_raises():
    with pytest.raises(KeyError):
        cities_of("ZZ")


def test_city_coordinates_within_bounds():
    for code in all_location_codes():
        for city in cities_of(code):
            assert -90 <= city.lat <= 90
            assert -180 <= city.lon <= 180
