"""Tests for the calibrated hosting profiles."""

import pytest

from repro.categories import HostingCategory
from repro.world.countries import COUNTRIES
from repro.world.profiles import (
    REGION_BYTE_MIX,
    REGION_INTL_SERVER_FRAC,
    REGION_URL_MIX,
    all_profiles,
    get_profile,
)

_G = HostingCategory.GOVT_SOE
_L = HostingCategory.P3_LOCAL
_GL = HostingCategory.P3_GLOBAL


def test_every_country_has_a_profile():
    profiles = all_profiles()
    assert set(profiles) == set(COUNTRIES)


def test_mixes_are_normalized():
    for code in COUNTRIES:
        profile = get_profile(code)
        assert sum(profile.url_mix.values()) == pytest.approx(1.0)
        assert sum(profile.byte_mix.values()) == pytest.approx(1.0)


def test_region_reference_mixes_normalized():
    for mix in list(REGION_URL_MIX.values()) + list(REGION_BYTE_MIX.values()):
        assert sum(mix.values()) == pytest.approx(1.0)


def test_intl_fraction_within_unit_interval():
    for code in COUNTRIES:
        profile = get_profile(code)
        assert 0.0 <= profile.intl_server_frac <= 0.85


def test_paper_pinned_country_findings():
    # Uruguay: 98% of bytes from Govt&SOE (Section 5.3).
    assert get_profile("UY").byte_mix[_G] > 0.9
    # Italy: 93% 3P Local (Section 5.3).
    assert get_profile("IT").url_mix[_L] == pytest.approx(0.93, abs=0.02)
    # Argentina: ~90% third-party (Section 1).
    argentina = get_profile("AR")
    assert 1 - argentina.url_mix[_G] == pytest.approx(0.90, abs=0.03)
    # Mexico: 79.22% of URLs served from the US (Section 6.3).
    mexico = get_profile("MX")
    assert mexico.intl_server_frac == pytest.approx(0.7922)
    assert mexico.partners["US"] > 0.9
    # New Zealand -> Australia 40%.
    nz = get_profile("NZ")
    assert nz.intl_server_frac == pytest.approx(0.40)
    assert max(nz.partners, key=nz.partners.get) == "AU"
    # France -> New Caledonia 18.03%.
    fr = get_profile("FR")
    assert fr.intl_server_frac == pytest.approx(0.1803)
    assert fr.partners == {"NC": 1.0}
    # India: 99.3% domestic.
    assert get_profile("IN").intl_server_frac == pytest.approx(0.007)
    # China: 26.4% of URLs from Japan.
    cn = get_profile("CN")
    assert cn.intl_server_frac == pytest.approx(0.264)
    assert max(cn.partners, key=cn.partners.get) == "JP"


def test_partner_weights_exclude_self():
    for code in COUNTRIES:
        assert code not in get_profile(code).partners


def test_dominant_category_examples():
    assert get_profile("UY").dominant_category() is _G
    assert get_profile("IT").dominant_category() is _L
    assert get_profile("CA").dominant_category() is _GL


def test_network_counts_positive():
    for code in COUNTRIES:
        profile = get_profile(code)
        assert profile.gov_network_count >= 1
        assert profile.local_provider_count >= 2


def test_default_intl_reacts_to_development_drivers():
    # Two ECA countries sharing the regional default but with very
    # different development: the populous/low-NRI one must host more
    # services abroad than the rich/high-NRI one.
    ua = get_profile("UA").intl_server_frac
    ch = get_profile("CH").intl_server_frac
    assert ua > ch


def test_region_intl_defaults_match_figure8b():
    from repro.world.regions import Region

    assert REGION_INTL_SERVER_FRAC[Region.SSA] == pytest.approx(0.48)
    assert REGION_INTL_SERVER_FRAC[Region.NA] == pytest.approx(0.02)


def test_foreign_byte_boost_defaults_to_one():
    assert get_profile("BR").foreign_byte_boost == 1.0
    assert get_profile("NO").foreign_byte_boost > 1.0
