"""Smoke tests: every shipped example runs end to end."""

import pathlib
import runpy
import sys

import pytest

_EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [script] + argv
    try:
        runpy.run_path(str(_EXAMPLES / script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("quickstart.py", ["0.02", "3"], capsys)
    assert "Dataset summary" in out
    assert "Global hosting mix" in out


def test_sovereignty_report(capsys):
    out = _run("sovereignty_report.py", ["UY", "MX"], capsys)
    assert "Uruguay" in out and "Mexico" in out
    assert "servers abroad" in out


def test_inspect_hostname(capsys):
    out = _run("inspect_hostname.py", [], capsys)
    assert "Serving infrastructure" in out
    assert "Validation" in out


@pytest.mark.slow
def test_provider_centralization(capsys):
    out = _run("provider_centralization.py", [], capsys)
    assert "Countries relying on each Global provider" in out
    assert "Diversification" in out


@pytest.mark.slow
def test_government_vs_topsites(capsys):
    out = _run("government_vs_topsites.py", [], capsys)
    assert "Hosting mixes" in out
    assert "Domestic vs international" in out


@pytest.mark.slow
def test_full_report(capsys):
    out = _run("full_report.py", ["0.02"], capsys)
    assert "reproduction report" in out
    assert "Extensions" in out
