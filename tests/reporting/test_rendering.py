"""Tests for table and figure text rendering."""

import pytest

from repro.analysis.registration import LocationSplit
from repro.categories import CATEGORY_ORDER, HostingCategory
from repro.reporting.figures import (
    render_histogram,
    render_mix_bars,
    render_region_table,
    render_split_bars,
)
from repro.reporting.tables import format_fraction, render_table


def test_format_fraction():
    assert format_fraction(0.394) == "0.39"
    assert format_fraction(0.5, digits=1) == "0.5"


def test_render_table_alignment():
    text = render_table(["a", "long-header"], [["x", 1], ["yy", 22]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "long-header" in lines[1]
    assert lines[2].startswith("---")
    assert len(lines) == 5


def test_render_mix_bars_contains_all_categories():
    mix = {category: 0.25 for category in HostingCategory}
    text = render_mix_bars({"URLs": mix})
    for category in CATEGORY_ORDER:
        assert str(category) in text
    assert "0.25" in text


def test_render_split_bars():
    text = render_split_bars({"WHOIS": LocationSplit(0.77, 0.23)})
    assert "0.77" in text and "0.23" in text
    assert "Domestic" in text


def test_render_region_table_sorted_descending():
    text = render_region_table({"A": 0.2, "B": 0.9}, "share")
    lines = text.splitlines()
    assert lines[2].startswith("B")
    assert "90.00" in text


def test_render_histogram():
    text = render_histogram(["cloudflare", "amazon"], [49, 31], title="Fig10")
    assert text.splitlines()[0] == "Fig10"
    assert "49" in text and "#" in text


def test_render_histogram_rejects_mismatch():
    with pytest.raises(ValueError):
        render_histogram(["a"], [1, 2])
