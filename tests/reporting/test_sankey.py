"""Tests for the Figure 9 Sankey data export."""

import json

from repro.reporting.sankey import build_sankey


def test_sankey_nodes_and_links_consistent(dataset):
    diagram = build_sankey(dataset)
    node_codes = {node.code for node in diagram.nodes}
    for link in diagram.links:
        assert link.source in node_codes
        assert link.target in node_codes
        assert link.source != link.target
        assert link.urls > 0


def test_sankey_json_roundtrip(dataset):
    diagram = build_sankey(dataset, basis="registration")
    payload = json.loads(diagram.to_json())
    assert payload["basis"] == "registration"
    assert len(payload["nodes"]) == len(diagram.nodes)
    assert len(payload["links"]) == len(diagram.links)
    assert {"source", "target", "urls", "bytes", "source_region",
            "target_region"} <= set(payload["links"][0])


def test_sankey_min_urls_filters(dataset):
    full = build_sankey(dataset, min_urls=1)
    filtered = build_sankey(dataset, min_urls=50)
    assert len(filtered.links) <= len(full.links)
    for link in filtered.links:
        assert link.urls >= 50


def test_region_matrix_matches_table5_shape(dataset):
    matrix = build_sankey(dataset).region_matrix()
    eca_total = sum(v for (s, _t), v in matrix.items() if s == "ECA")
    eca_in_region = matrix.get(("ECA", "ECA"), 0)
    assert eca_total > 0
    assert eca_in_region / eca_total > 0.75


def test_france_to_new_caledonia_link(dataset):
    diagram = build_sankey(dataset)
    assert any(
        link.source == "FR" and link.target == "NC" for link in diagram.links
    )
