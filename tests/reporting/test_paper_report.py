"""Tests for the full evaluation report renderer."""

from repro.reporting.paper_report import render_paper_report


def test_report_contains_every_section(dataset, world):
    text = render_paper_report(dataset, world)
    for marker in (
        "reproduction report",
        "Trends in government hosting (Section 5)",
        "Registration and server locations (Section 6)",
        "Global providers and diversification (Section 7)",
        "Explanatory factors (Appendix E)",
        "Extensions",
        "Figure 2", "Figure 4b", "Figure 6", "Figure 8b", "Table 5",
        "Figure 10", "Figure 11", "Figure 12",
        "GDPR compliance",
        "third-party DNS",
    ):
        assert marker in text, marker


def test_report_without_world_skips_extensions(dataset):
    text = render_paper_report(dataset)
    assert "Extensions" not in text
    assert "Figure 2" in text


def test_report_is_deterministic(dataset, world):
    assert render_paper_report(dataset, world) == render_paper_report(dataset, world)
