"""Tests for dataset serialization."""

import json

import pytest

from repro.core.dataset import GovernmentHostingDataset
from repro.io import (
    FORMAT_VERSION,
    export_csv,
    load_dataset,
    record_from_dict,
    record_to_dict,
    save_dataset,
)


def test_record_roundtrip(dataset):
    record = next(dataset.iter_records())
    assert record_from_dict(record_to_dict(record)) == record


def test_save_and_load_roundtrip(tmp_path, dataset):
    path = tmp_path / "dataset.jsonl"
    written = save_dataset(dataset, path)
    assert written == sum(cd.url_count for cd in dataset.countries.values())

    loaded = load_dataset(path)
    assert set(loaded.countries) == set(dataset.countries)
    for code, original in dataset.countries.items():
        restored = loaded.countries[code]
        assert restored.landing_count == original.landing_count
        assert restored.discarded_url_count == original.discarded_url_count
        assert restored.depth_histogram == original.depth_histogram
        assert len(restored.records) == len(original.records)
    assert loaded.summarize() == dataset.summarize()
    assert loaded.validation.table4() == dataset.validation.table4()


def test_loaded_dataset_supports_analyses(tmp_path, dataset):
    from repro.analysis import global_breakdown

    path = tmp_path / "dataset.jsonl"
    save_dataset(dataset, path)
    loaded = load_dataset(path)
    assert global_breakdown(loaded) == global_breakdown(dataset)


def test_header_format_checked(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"format": 999, "countries": {}}) + "\n")
    with pytest.raises(ValueError):
        load_dataset(path)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ValueError):
        load_dataset(path)


def test_format_version_is_stable():
    assert FORMAT_VERSION == 1


def test_corrupt_record_reports_line_number(tmp_path, dataset):
    path = tmp_path / "corrupt.jsonl"
    save_dataset(dataset, path)
    lines = path.read_text().splitlines()
    lines[3] = "{not json"
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match=":4:"):
        load_dataset(path)


def test_record_with_missing_field_rejected(tmp_path, dataset):
    path = tmp_path / "missing.jsonl"
    save_dataset(dataset, path)
    lines = path.read_text().splitlines()
    lines[1] = json.dumps({"url": "https://x/"})
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match=":2:"):
        load_dataset(path)


def test_export_csv(tmp_path, dataset):
    path = tmp_path / "dataset.csv"
    written = export_csv(dataset, path)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == written + 1  # header
    assert lines[0].startswith("url,hostname,country")


def test_record_with_unknown_country_reports_line(tmp_path, dataset):
    # A record whose country is absent from the header's countries map
    # must fail loudly (it used to be dropped silently), naming the line.
    path = tmp_path / "stray.jsonl"
    save_dataset(dataset, path)
    lines = path.read_text().splitlines()
    stray = json.loads(lines[2])
    stray["country"] = "ZZ"
    lines[2] = json.dumps(stray)
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match=r":3: .*'ZZ'.*countries map"):
        load_dataset(path)


def test_export_csv_empty_dataset_keeps_header(tmp_path, dataset):
    # The CSV column set comes from the record shape, not from the first
    # record, so an empty dataset still exports a well-formed header.
    empty = GovernmentHostingDataset(
        countries={}, validation=dataset.validation
    )
    path = tmp_path / "empty.csv"
    assert export_csv(empty, path) == 0
    full_path = tmp_path / "full.csv"
    export_csv(dataset, full_path)
    assert (
        path.read_text().strip()
        == full_path.read_text().splitlines()[0].strip()
    )
