"""Tests for dataset serialization."""

import csv
import json
import logging

import pytest

from repro.core.dataset import GovernmentHostingDataset
from repro.io import (
    FORMAT_VERSION,
    export_csv,
    load_dataset,
    record_from_dict,
    record_to_dict,
    save_dataset,
)


def test_record_roundtrip(dataset):
    record = next(dataset.iter_records())
    assert record_from_dict(record_to_dict(record)) == record


def test_save_and_load_roundtrip(tmp_path, dataset):
    path = tmp_path / "dataset.jsonl"
    written = save_dataset(dataset, path)
    assert written == sum(cd.url_count for cd in dataset.countries.values())

    loaded = load_dataset(path)
    assert set(loaded.countries) == set(dataset.countries)
    for code, original in dataset.countries.items():
        restored = loaded.countries[code]
        assert restored.landing_count == original.landing_count
        assert restored.discarded_url_count == original.discarded_url_count
        assert restored.depth_histogram == original.depth_histogram
        assert len(restored.records) == len(original.records)
    assert loaded.summarize() == dataset.summarize()
    assert loaded.validation.table4() == dataset.validation.table4()


def test_loaded_dataset_supports_analyses(tmp_path, dataset):
    from repro.analysis import global_breakdown

    path = tmp_path / "dataset.jsonl"
    save_dataset(dataset, path)
    loaded = load_dataset(path)
    assert global_breakdown(loaded) == global_breakdown(dataset)


def test_header_format_checked(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"format": 999, "countries": {}}) + "\n")
    with pytest.raises(ValueError):
        load_dataset(path)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ValueError):
        load_dataset(path)


def test_format_version_is_stable():
    assert FORMAT_VERSION == 1


def test_corrupt_record_reports_line_number(tmp_path, dataset):
    path = tmp_path / "corrupt.jsonl"
    save_dataset(dataset, path)
    lines = path.read_text().splitlines()
    lines[3] = "{not json"
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match=":4:"):
        load_dataset(path)


def test_record_with_missing_field_rejected(tmp_path, dataset):
    path = tmp_path / "missing.jsonl"
    save_dataset(dataset, path)
    lines = path.read_text().splitlines()
    lines[1] = json.dumps({"url": "https://x/"})
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match=":2:"):
        load_dataset(path)


def test_export_csv(tmp_path, dataset):
    path = tmp_path / "dataset.csv"
    written = export_csv(dataset, path)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == written + 1  # header
    assert lines[0].startswith("url,hostname,country")


def test_record_with_unknown_country_reports_line(tmp_path, dataset):
    # A record whose country is absent from the header's countries map
    # must fail loudly (it used to be dropped silently), naming the line.
    path = tmp_path / "stray.jsonl"
    save_dataset(dataset, path)
    lines = path.read_text().splitlines()
    stray = json.loads(lines[2])
    stray["country"] = "ZZ"
    lines[2] = json.dumps(stray)
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match=r":3: .*'ZZ'.*countries map"):
        load_dataset(path)


def test_faulted_run_header_roundtrip(tmp_path):
    # A faulted run at real scale must round-trip its fault report
    # through the header (the "faults" key only exists for such runs).
    from repro import Pipeline, SyntheticWorld, WorldConfig

    config = WorldConfig(seed=13, scale=0.02, countries=("BR", "US"),
                         include_topsites=False, fault_rate=0.1)
    faulted = Pipeline(SyntheticWorld.generate(config)).run(["BR", "US"])
    assert faulted.faults.countries
    path = tmp_path / "faulted.jsonl"
    save_dataset(faulted, path)
    header = json.loads(path.read_text().splitlines()[0])
    assert "faults" in header
    loaded = load_dataset(path)
    assert loaded.faults.to_dict() == faulted.faults.to_dict()


def test_duplicate_country_key_in_header_rejected(tmp_path, tiny_dataset):
    # json.loads silently keeps the last duplicate, dropping records;
    # the loader must fail loudly instead.
    path = tmp_path / "dupe.jsonl"
    save_dataset(tiny_dataset, path)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    code, meta = next(iter(header["countries"].items()))
    countries_json = json.dumps(header["countries"])
    duplicated = countries_json[:-1] + ", " + json.dumps(code) + ": " + \
        json.dumps(meta) + "}"
    lines[0] = lines[0].replace(countries_json, duplicated)
    assert json.dumps(code) in duplicated
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match=rf":1: .*duplicate key '{code}'"):
        load_dataset(path)


@pytest.mark.parametrize("field,bogus", [
    ("category", "no-such-category"),
    ("via", "carrier-pigeon"),
    ("validation", "vibes"),
])
def test_out_of_enum_value_reports_line(tmp_path, tiny_dataset, field, bogus):
    path = tmp_path / "enum.jsonl"
    save_dataset(tiny_dataset, path)
    lines = path.read_text().splitlines()
    record = json.loads(lines[2])
    record[field] = bogus
    lines[2] = json.dumps(record)
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match=":3:"):
        load_dataset(path)


def test_large_file_warning(tmp_path, tiny_dataset, monkeypatch, caplog):
    import repro.io as io_module

    path = tmp_path / "large.jsonl"
    total = save_dataset(tiny_dataset, path)
    assert total > 3
    monkeypatch.setattr(io_module, "LARGE_FILE_RECORDS", 3)
    with caplog.at_level(logging.WARNING, logger="repro.io"):
        load_dataset(path)
    messages = [r.message for r in caplog.records
                if r.name == "repro.io" and "convert" in r.message]
    assert len(messages) == 1  # warned once, not per record
    # Under the real threshold nothing warns.
    monkeypatch.setattr(io_module, "LARGE_FILE_RECORDS", 1_000_000)
    caplog.clear()
    with caplog.at_level(logging.WARNING, logger="repro.io"):
        load_dataset(path)
    assert not [r for r in caplog.records if r.name == "repro.io"]


def test_export_csv_column_order_roundtrip(tmp_path, tiny_dataset):
    # The csv.writer rows must line up with record_to_dict's header --
    # parse the file back and rebuild the records through the dict path.
    path = tmp_path / "ordered.csv"
    written = export_csv(tiny_dataset, path)
    with path.open(newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == written
    originals = list(tiny_dataset.iter_records())
    for row, original in zip(rows, originals):
        expected = record_to_dict(original)
        assert list(row) == list(expected)  # same column order
        parsed = {
            key: json.loads(value.lower()) if key in (
                "size_bytes", "depth", "address", "asn",
                "gov_operated", "anycast",
            ) else value
            for key, value in row.items()
        }
        if parsed["server_country"] == "":
            parsed["server_country"] = None
        assert record_from_dict(parsed) == original


def test_export_csv_empty_dataset_keeps_header(tmp_path, dataset):
    # The CSV column set comes from the record shape, not from the first
    # record, so an empty dataset still exports a well-formed header.
    empty = GovernmentHostingDataset(
        countries={}, validation=dataset.validation
    )
    path = tmp_path / "empty.csv"
    assert export_csv(empty, path) == 0
    full_path = tmp_path / "full.csv"
    export_csv(dataset, full_path)
    assert (
        path.read_text().strip()
        == full_path.read_text().splitlines()[0].strip()
    )
