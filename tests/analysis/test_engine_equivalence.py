"""Index-backed analyses == legacy record loops, exactly.

Every Section 5-7 figure/table function rewritten onto the
:class:`~repro.analysis.engine.AnalysisIndex` is compared against the
verbatim pre-index implementation kept in
:mod:`repro.analysis.engine.baseline`.  Equality is strict ``==`` --
same floats (same arithmetic order), same orderings, same types -- over
two seeds, a faulted run and an empty dataset, and the full rendered
paper report must be byte-identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.analysis import (
    crossborder,
    diversification,
    hosting,
    providers,
    registration,
    regression,
    resilience,
    topsites,
)
from repro.analysis.engine import AnalysisIndex, ensure_index
from repro.analysis.engine import baseline as bl
from repro.core.dataset import (
    CountryDataset,
    GovernmentHostingDataset,
    UrlRecord,
)
from repro.core.geolocation import ValidationMethod, ValidationStats
from repro.core.urlfilter import FilterVia
from repro.reporting.paper_report import render_paper_report

ALT_COUNTRIES = ("BR", "US", "FR", "MA")


def _run(config: WorldConfig) -> GovernmentHostingDataset:
    world = SyntheticWorld.generate(config)
    return Pipeline(world).run(list(config.countries))


@pytest.fixture(scope="module")
def alt_dataset() -> GovernmentHostingDataset:
    """Second seed: a different world than the shared session dataset."""
    return _run(WorldConfig(seed=11, scale=0.03, countries=ALT_COUNTRIES,
                            include_topsites=False))


@pytest.fixture(scope="module")
def faulted_dataset() -> GovernmentHostingDataset:
    """A run with injected faults (excluded records, lost hostnames)."""
    return _run(WorldConfig(seed=13, scale=0.03, countries=ALT_COUNTRIES,
                            include_topsites=False, fault_rate=0.08))


@pytest.fixture(scope="module")
def empty_dataset() -> GovernmentHostingDataset:
    no_records = CountryDataset(
        country="ZZ", landing_count=0, records=[],
        discarded_url_count=0, unresolved_hostnames=[], depth_histogram={},
    )
    return GovernmentHostingDataset(
        countries={"ZZ": no_records}, validation=ValidationStats(),
    )


#: Fixture names the equivalence matrix runs over: two seeds, a faulted
#: run, and a fully empty dataset.
DATASETS = ("dataset", "alt_dataset", "faulted_dataset", "empty_dataset")


@pytest.fixture(params=DATASETS)
def any_dataset(request) -> GovernmentHostingDataset:
    return request.getfixturevalue(request.param)


# ------------------------------------------------------------ Section 5

def test_global_breakdown_equivalent(any_dataset):
    assert hosting.global_breakdown(any_dataset) == \
        bl.baseline_global_breakdown(any_dataset)


def test_country_breakdown_equivalent(any_dataset):
    assert hosting.country_breakdown(any_dataset) == \
        bl.baseline_country_breakdown(any_dataset)


@pytest.mark.parametrize("by_bytes", [False, True])
@pytest.mark.parametrize("weighting", ["country", "url"])
def test_regional_breakdown_equivalent(any_dataset, by_bytes, weighting):
    ours = hosting.regional_breakdown(any_dataset, by_bytes=by_bytes,
                                      weighting=weighting)
    reference = bl.baseline_regional_breakdown(any_dataset, by_bytes=by_bytes,
                                               weighting=weighting)
    assert ours == reference
    assert list(ours) == list(reference)  # same region iteration order


@pytest.mark.parametrize("by_bytes", [False, True])
def test_country_majority_equivalent(any_dataset, by_bytes):
    assert hosting.country_majority(any_dataset, by_bytes=by_bytes) == \
        bl.baseline_country_majority(any_dataset, by_bytes=by_bytes)


# ------------------------------------------------------------ Section 6

def test_global_split_equivalent(any_dataset):
    assert registration.global_split(any_dataset) == \
        bl.baseline_global_split(any_dataset)


def test_country_split_equivalent(any_dataset):
    assert registration.country_split(any_dataset) == \
        bl.baseline_country_split(any_dataset)


@pytest.mark.parametrize("view", ["whois", "geolocation"])
@pytest.mark.parametrize("weighting", ["country", "url"])
def test_regional_split_equivalent(any_dataset, view, weighting):
    ours = registration.regional_split(any_dataset, view=view,
                                       weighting=weighting)
    reference = bl.baseline_regional_split(any_dataset, view=view,
                                           weighting=weighting)
    assert ours == reference
    assert list(ours) == list(reference)


@pytest.mark.parametrize("basis", ["server", "registration"])
def test_flows_equivalent(any_dataset, basis):
    assert crossborder.flows(any_dataset, basis) == \
        bl.baseline_flows(any_dataset, basis)


@pytest.mark.parametrize("basis", ["server", "registration"])
def test_same_region_share_equivalent(any_dataset, basis):
    ours = crossborder.same_region_share(any_dataset, basis)
    reference = bl.baseline_same_region_share(any_dataset, basis)
    assert ours == reference
    assert list(ours) == list(reference)


@pytest.mark.parametrize("basis", ["server", "registration"])
def test_regional_affinity_equivalent(any_dataset, basis):
    assert crossborder.regional_affinity(any_dataset, basis) == \
        bl.baseline_regional_affinity(any_dataset, basis)


def test_gdpr_compliance_equivalent(any_dataset):
    assert crossborder.gdpr_compliance(any_dataset) == \
        bl.baseline_gdpr_compliance(any_dataset)


@pytest.mark.parametrize("basis", ["server", "registration"])
def test_bilateral_share_equivalent(dataset, basis):
    for source, destination in [("MX", "US"), ("NZ", "AU"), ("BR", "BR"),
                                ("US", "QQ")]:
        assert crossborder.bilateral_share(dataset, source, destination,
                                           basis) == \
            bl.baseline_bilateral_share(dataset, source, destination, basis)


def test_bilateral_share_unknown_source_raises(dataset):
    with pytest.raises(KeyError):
        crossborder.bilateral_share(dataset, "QQ", "US")
    with pytest.raises(KeyError):
        bl.baseline_bilateral_share(dataset, "QQ", "US")


def test_foreign_share_by_destination_equivalent(any_dataset):
    ours = crossborder.foreign_share_by_destination(any_dataset)
    reference = bl.baseline_foreign_share_by_destination(any_dataset)
    assert ours == reference
    assert list(ours) == list(reference)


# ------------------------------------------------------------ Section 7

def test_global_provider_asns_equivalent(any_dataset):
    assert providers.global_provider_asns(any_dataset) == \
        bl.baseline_global_provider_asns(any_dataset)


def test_global_provider_footprints_equivalent(any_dataset):
    assert providers.global_provider_footprints(any_dataset) == \
        bl.baseline_global_provider_footprints(any_dataset)


def test_provider_byte_reliance_equivalent(any_dataset):
    ours = providers.provider_byte_reliance(any_dataset)
    reference = bl.baseline_provider_byte_reliance(any_dataset)
    assert ours == reference
    assert list(ours) == list(reference)


def test_top_reliances_equivalent(any_dataset):
    assert providers.top_reliances(any_dataset, 5) == \
        bl.baseline_top_reliances(any_dataset, 5)


@pytest.mark.parametrize("by_bytes", [False, True])
def test_country_network_hhi_equivalent(any_dataset, by_bytes):
    assert diversification.country_network_hhi(any_dataset,
                                               by_bytes=by_bytes) == \
        bl.baseline_country_network_hhi(any_dataset, by_bytes=by_bytes)


@pytest.mark.parametrize("by_bytes", [False, True])
def test_hhi_by_dominant_category_equivalent(any_dataset, by_bytes):
    assert diversification.hhi_by_dominant_category(
        any_dataset, by_bytes=by_bytes
    ) == bl.baseline_hhi_by_dominant_category(any_dataset, by_bytes=by_bytes)


def test_single_network_dependence_equivalent(any_dataset):
    assert diversification.single_network_dependence(any_dataset) == \
        bl.baseline_single_network_dependence(any_dataset)


def test_outage_impact_equivalent(any_dataset):
    index = ensure_index(any_dataset)
    for asn in index.asn_first_seen()[:5]:
        assert resilience.outage_impact(any_dataset, asn) == \
            bl.baseline_outage_impact(any_dataset, asn)
    assert resilience.outage_impact(any_dataset, -1) == \
        bl.baseline_outage_impact(any_dataset, -1)


def test_single_points_of_failure_equivalent(any_dataset):
    assert resilience.single_points_of_failure(any_dataset) == \
        bl.baseline_single_points_of_failure(any_dataset)


def test_worst_global_outage_equivalent(any_dataset):
    assert resilience.worst_global_outage(any_dataset) == \
        bl.baseline_worst_global_outage(any_dataset)


# ------------------------------------------------- Appendix E regression

def test_feature_matrix_equivalent(any_dataset):
    codes, features, outcome = regression.feature_matrix(any_dataset)
    ref_codes, ref_features, ref_outcome = \
        bl.baseline_feature_matrix(any_dataset)
    assert codes == ref_codes
    assert np.array_equal(features, ref_features)
    assert np.array_equal(outcome, ref_outcome)


def test_regression_equivalent(dataset):
    assert regression.explanatory_regression(dataset) == \
        bl.baseline_explanatory_regression(dataset)
    assert regression.variance_inflation_factors(dataset) == \
        bl.baseline_variance_inflation_factors(dataset)


def test_regression_too_few_countries_raises_both_ways(alt_dataset,
                                                       empty_dataset):
    # Four countries are fewer than the seven observations OLS needs;
    # the empty dataset has none at all.  Both paths must refuse alike.
    for measured in (alt_dataset, empty_dataset):
        with pytest.raises(ValueError):
            regression.explanatory_regression(measured)
        with pytest.raises(ValueError):
            bl.baseline_explanatory_regression(measured)


# ------------------------------------------------- topsites subsets

def test_government_subset_breakdown_equivalent(any_dataset):
    assert topsites.government_subset_breakdown(any_dataset) == \
        bl.baseline_government_subset_breakdown(any_dataset)


def test_government_subset_location_equivalent(any_dataset):
    assert topsites.government_subset_location(any_dataset) == \
        bl.baseline_government_subset_location(any_dataset)


# ------------------------------------------------- summary + report text

def test_summary_equals_record_summarize(any_dataset):
    assert ensure_index(any_dataset).summary() == any_dataset.summarize()


def test_report_byte_identical(dataset, world):
    assert render_paper_report(dataset) == \
        bl.baseline_render_paper_report(dataset)
    assert render_paper_report(dataset, world) == \
        bl.baseline_render_paper_report(dataset, world)


def test_report_byte_identical_faulted(faulted_dataset):
    assert render_paper_report(faulted_dataset) == \
        bl.baseline_render_paper_report(faulted_dataset)


def test_report_byte_identical_empty(empty_dataset):
    assert render_paper_report(empty_dataset) == \
        bl.baseline_render_paper_report(empty_dataset)


# ------------------------------------------------- index plumbing

def test_index_cached_on_dataset(alt_dataset):
    first = ensure_index(alt_dataset)
    assert ensure_index(alt_dataset) is first
    assert ensure_index(first) is first
    assert first.dataset is alt_dataset


def test_build_always_fresh(alt_dataset):
    assert AnalysisIndex.build(alt_dataset) is not \
        AnalysisIndex.build(alt_dataset)


def test_record_count_matches(any_dataset):
    index = ensure_index(any_dataset)
    assert index.record_count == sum(
        len(cd.records) for cd in any_dataset.countries.values()
    )


def test_passing_index_directly_matches_dataset(dataset):
    index = ensure_index(dataset)
    assert hosting.global_breakdown(index) == \
        hosting.global_breakdown(dataset)
    assert registration.global_split(index) == \
        registration.global_split(dataset)
    assert render_paper_report(index) == render_paper_report(dataset)


# ------------------------------------------------- store-backed index

def _store_roundtrip(measured, tmp_path):
    from repro.store import load_store_dataset, write_store

    write_store(measured, tmp_path / "equiv.store")
    return load_store_dataset(tmp_path / "equiv.store")


def test_report_byte_identical_store_backed(dataset, tmp_path):
    store_dataset = _store_roundtrip(dataset, tmp_path)
    assert render_paper_report(store_dataset) == \
        bl.baseline_render_paper_report(dataset)


def test_report_byte_identical_store_backed_faulted(faulted_dataset,
                                                    tmp_path):
    store_dataset = _store_roundtrip(faulted_dataset, tmp_path)
    assert render_paper_report(store_dataset) == \
        bl.baseline_render_paper_report(faulted_dataset)


def test_report_byte_identical_store_backed_empty(empty_dataset, tmp_path):
    store_dataset = _store_roundtrip(empty_dataset, tmp_path)
    assert render_paper_report(store_dataset) == \
        bl.baseline_render_paper_report(empty_dataset)
