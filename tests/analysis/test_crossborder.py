"""Tests for cross-border dependency analyses (Section 6.3)."""

import pytest

from repro.analysis.crossborder import (
    EU_MEMBER_CODES,
    bilateral_share,
    flows,
    foreign_share_by_destination,
    gdpr_compliance,
    region_of,
    regional_affinity,
    same_region_share,
)
from repro.world.regions import Region


def test_flows_only_contain_foreign_pairs(dataset):
    for flow in flows(dataset):
        assert flow.source != flow.destination
        assert flow.url_count > 0
        assert flow.byte_count > 0


def test_flows_by_registration_basis(dataset):
    registration_flows = flows(dataset, basis="registration")
    assert registration_flows
    # US-registered organizations dominate foreign registration (S6.3).
    by_dest = {}
    for flow in registration_flows:
        by_dest[flow.destination] = by_dest.get(flow.destination, 0) + flow.url_count
    assert max(by_dest, key=by_dest.get) == "US"


def test_region_of_extras():
    assert region_of("NC") is Region.EAP
    assert region_of("AT") is Region.ECA
    with pytest.raises(KeyError):
        region_of("ZZ")


def test_same_region_share_shape(dataset):
    shares = same_region_share(dataset)
    # ECA and EAP keep most cross-border dependencies in-region;
    # LAC, MENA, SA and SSA do not (Table 5).
    assert shares[Region.ECA] > 0.75
    assert shares[Region.EAP] > 0.6
    assert shares[Region.LAC] < 0.15
    assert shares.get(Region.MENA, 0.0) < 0.1
    assert shares.get(Region.SA, 0.0) < 0.15
    assert shares.get(Region.SSA, 0.0) < 0.15


def test_regional_affinity_hosts(dataset):
    affinity = regional_affinity(dataset)
    # Germany is the main in-region host for ECA (36% in the paper).
    eca_hosts = affinity[Region.ECA]
    assert max(eca_hosts, key=eca_hosts.get) == "DE"
    for hosts in affinity.values():
        assert sum(hosts.values()) == pytest.approx(1.0)


def test_gdpr_compliance_high(dataset):
    # Paper: 98.3% of EU-government URLs served within the EU.
    assert gdpr_compliance(dataset) > 0.93


def test_eu_membership_set():
    assert "DE" in EU_MEMBER_CODES
    assert "IE" in EU_MEMBER_CODES  # hosting-only territory, EU member
    assert "GB" not in EU_MEMBER_CODES
    assert "NC" not in EU_MEMBER_CODES


def test_bilateral_shares_match_paper(dataset):
    assert bilateral_share(dataset, "MX", "US") == pytest.approx(0.79, abs=0.10)
    assert bilateral_share(dataset, "NZ", "AU") == pytest.approx(0.40, abs=0.15)
    assert bilateral_share(dataset, "CN", "JP") == pytest.approx(0.26, abs=0.17)
    assert bilateral_share(dataset, "FR", "NC") == pytest.approx(0.18, abs=0.08)
    # Brazil barely relies on the US (1.78% in the paper).
    assert bilateral_share(dataset, "BR", "US") < 0.08


def test_foreign_destinations_led_by_us_and_western_europe(dataset):
    shares = foreign_share_by_destination(dataset)
    assert sum(shares.values()) == pytest.approx(1.0)
    west = shares.get("US", 0) + shares.get("DE", 0) + shares.get("FR", 0) + \
        shares.get("GB", 0) + shares.get("NL", 0) + shares.get("IE", 0)
    # Paper: North America + Western Europe host 57% of cross-border URLs.
    assert west > 0.5


def test_new_caledonia_appears_as_destination(dataset):
    destinations = {flow.destination for flow in flows(dataset)}
    assert "NC" in destinations
