"""N-snapshot trend engine plus the one-sided compare_snapshots fix."""

from __future__ import annotations

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.analysis.longitudinal import (
    TrendReport,
    compare_snapshots,
    compute_trends,
    trend_summary,
)


def _measure(countries, seed=7, **config_kwargs):
    config = WorldConfig(seed=seed, scale=0.05, countries=countries,
                         **config_kwargs)
    return Pipeline(SyntheticWorld.generate(config)).run()


@pytest.fixture(scope="module")
def snapshots():
    """A three-snapshot series with growing third-party drift."""
    return [
        _measure(("BR", "US", "FR"), third_party_drift=drift)
        for drift in (0.0, 0.15, 0.3)
    ]


# ------------------------------------------- one-sided compare_snapshots

def test_compare_skips_country_in_only_one_snapshot():
    """Satellite fix: a country measured in just one snapshot must not
    raise; the default semantics omit it."""
    before = _measure(("BR", "US"))
    after = _measure(("BR", "US", "FR"))
    deltas = compare_snapshots(before, after)
    assert set(deltas) == {"BR", "US"}
    reverse = compare_snapshots(after, before)
    assert set(reverse) == {"BR", "US"}


def test_compare_zero_semantics_includes_one_sided():
    before = _measure(("BR", "US"))
    after = _measure(("BR", "US", "FR"))
    deltas = compare_snapshots(before, after, missing="zero")
    assert set(deltas) == {"BR", "US", "FR"}
    assert deltas["FR"].third_party_before == 0.0
    assert deltas["FR"].delta == deltas["FR"].third_party_after > 0.0


def test_compare_missing_choice_validated(tiny_dataset):
    with pytest.raises(ValueError):
        compare_snapshots(tiny_dataset, tiny_dataset, missing="explode")


def test_compare_identical_snapshots_all_zero(tiny_dataset):
    deltas = compare_snapshots(tiny_dataset, tiny_dataset)
    assert deltas
    assert all(d.delta == 0.0 for d in deltas.values())
    summary = trend_summary(deltas)
    assert summary["mean_delta"] == 0.0
    assert summary["share_increasing"] == 0.0


# ------------------------------------------------------- trend engine

def test_trend_report_shape(snapshots):
    report = compute_trends(snapshots)
    assert isinstance(report, TrendReport)
    assert report.labels == ("T+0", "T+1", "T+2")
    assert len(report.points) == 3
    for point in report.points:
        assert point.countries == 3
        assert 0.0 <= point.mean_third_party_share <= 1.0
        assert 0.0 < point.mean_hhi <= 1.0
    assert set(report.hhi_series) == {"BR", "US", "FR"}
    for series in report.hhi_series.values():
        assert len(series) == 3


def test_third_party_drift_detected(snapshots):
    """Worlds generated with growing third_party_drift must trend up."""
    report = compute_trends(snapshots)
    shares = [p.mean_third_party_share for p in report.points]
    assert shares[0] < shares[-1]
    assert report.third_party_drift > 0.0


def test_custom_labels(snapshots):
    report = compute_trends(snapshots, labels=["2023", "2024", "2025"])
    assert report.labels == ("2023", "2024", "2025")
    with pytest.raises(ValueError):
        compute_trends(snapshots, labels=["only-one"])


def test_single_snapshot_degenerate(tiny_dataset):
    report = compute_trends([tiny_dataset])
    assert report.snapshot_count == 1
    assert report.hhi_drift == 0.0
    assert report.third_party_drift == 0.0
    assert report.migrations == ()


def test_empty_series_rejected():
    with pytest.raises(ValueError):
        compute_trends([])


def test_to_dict_json_ready(snapshots):
    import json

    payload = compute_trends(snapshots).to_dict()
    round_tripped = json.loads(json.dumps(payload))
    assert round_tripped["labels"] == ["T+0", "T+1", "T+2"]
    assert len(round_tripped["points"]) == 3
    assert "hhi_drift" in round_tripped
    assert set(round_tripped["hhi_series"]) == {"BR", "US", "FR"}


def test_migrations_well_formed(snapshots):
    report = compute_trends(snapshots)
    labels = set(report.labels)
    for migration in report.migrations:
        assert migration.from_label in labels
        assert migration.to_label in labels
        assert migration.from_category != migration.to_category


def test_accepts_prebuilt_indexes(snapshots):
    from repro.analysis.engine import ensure_index

    via_datasets = compute_trends(snapshots)
    via_indexes = compute_trends([ensure_index(s) for s in snapshots])
    assert via_datasets.to_dict() == via_indexes.to_dict()
