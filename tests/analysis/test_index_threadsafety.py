"""Regression tests for the engine's concurrency contract.

Before the build/memoization locks, concurrent first queries could
build the index twice (``ensure`` was an unlocked check-then-setattr)
or compute an aggregate table twice (``functools.cached_property``
lost its lock in Python 3.12).  These tests hammer both paths from a
thread pool and assert single construction plus bit-equal results.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.analysis.engine import AnalysisIndex, ensure_index

WORKERS = 8


def _fresh(dataset):
    """A copy of the dataset without the cached-index attribute.

    ``dataclasses.replace`` copies only declared fields, so the
    ``setattr``-cached index (and build lock) of the session fixture
    stay behind.
    """
    return dataclasses.replace(dataset)


def test_concurrent_ensure_builds_once(tiny_dataset, monkeypatch):
    fresh = _fresh(tiny_dataset)
    calls: list[int] = []
    real_build = AnalysisIndex.build.__func__

    def counting_build(cls, source):
        calls.append(threading.get_ident())
        time.sleep(0.05)  # widen the historical check-then-set race
        return real_build(cls, source)

    monkeypatch.setattr(AnalysisIndex, "build", classmethod(counting_build))
    barrier = threading.Barrier(WORKERS)

    def worker(_):
        barrier.wait()
        return ensure_index(fresh)

    with ThreadPoolExecutor(max_workers=WORKERS) as pool:
        results = list(pool.map(worker, range(WORKERS)))

    assert len(calls) == 1
    assert all(index is results[0] for index in results)


def test_ensure_different_datasets_not_serialized(tiny_dataset, monkeypatch):
    """The build lock is per-dataset: two datasets build concurrently."""
    first, second = _fresh(tiny_dataset), _fresh(tiny_dataset)
    overlap = threading.Barrier(2, timeout=30)
    real_build = AnalysisIndex.build.__func__

    def meeting_build(cls, source):
        overlap.wait()  # both builds must be in flight at once
        return real_build(cls, source)

    monkeypatch.setattr(AnalysisIndex, "build", classmethod(meeting_build))
    with ThreadPoolExecutor(max_workers=2) as pool:
        first_index, second_index = pool.map(ensure_index, [first, second])
    assert first_index is not second_index


def test_concurrent_table_memo_computes_once(tiny_dataset, monkeypatch):
    index = ensure_index(_fresh(tiny_dataset))
    descriptor = AnalysisIndex.__dict__["_category_table"]
    calls: list[int] = []
    original = descriptor.func

    def counting(instance):
        calls.append(threading.get_ident())
        time.sleep(0.02)
        return original(instance)

    monkeypatch.setattr(descriptor, "func", counting)
    barrier = threading.Barrier(WORKERS)

    def worker(_):
        barrier.wait()
        return index.category_counts()

    with ThreadPoolExecutor(max_workers=WORKERS) as pool:
        results = list(pool.map(worker, range(WORKERS)))

    assert len(calls) == 1
    # One memoized object, not equal re-computations.
    assert all(table is results[0] for table in results)


def test_concurrent_tables_bit_equal_serial(tiny_dataset):
    """Mixed concurrent table reads match a serially-built index."""
    serial = ensure_index(_fresh(tiny_dataset))
    expected = {
        "global": serial.global_category_counts(),
        "crossborder": serial.crossborder_counts("server"),
        "summary": serial.summary(),
    }

    hammered = ensure_index(_fresh(tiny_dataset))
    barrier = threading.Barrier(WORKERS)

    def worker(kind: str):
        barrier.wait()
        if kind == "global":
            return "global", hammered.global_category_counts()
        if kind == "crossborder":
            return "crossborder", hammered.crossborder_counts("server")
        return "summary", hammered.summary()

    kinds = ["global", "crossborder", "summary", "global",
             "crossborder", "summary", "global", "crossborder"]
    assert len(kinds) == WORKERS
    with ThreadPoolExecutor(max_workers=WORKERS) as pool:
        for kind, value in pool.map(worker, kinds):
            assert value == expected[kind]
