"""Regression tests: analyses over empty or degenerate datasets.

A heavily faulted (or heavily filtered) run can leave countries with no
records, zero-byte responses or no overlapping snapshot coverage.  Every
analysis must degrade to a well-defined empty result instead of raising
``ZeroDivisionError``/``ValueError``.
"""

import pytest

from repro.analysis.diversification import (
    dominant_category,
    hhi_by_dominant_category,
    single_network_dependence,
)
from repro.analysis.https_adoption import (
    country_https_adoption,
    global_https_prevalence,
)
from repro.analysis.longitudinal import compare_snapshots, trend_summary
from repro.analysis.resilience import outage_impact, single_points_of_failure
from repro.categories import HostingCategory
from repro.core.dataset import (
    CountryDataset,
    GovernmentHostingDataset,
    UrlRecord,
)
from repro.core.geolocation import ValidationMethod, ValidationStats
from repro.core.urlfilter import FilterVia


def _empty_country(code="ZZ") -> CountryDataset:
    return CountryDataset(
        country=code, landing_count=0, records=[],
        discarded_url_count=0, unresolved_hostnames=[], depth_histogram={},
    )


def _record(category, size_bytes=10, asn=64500, url="https://www.gov.zz/"):
    return UrlRecord(
        url=url, hostname="www.gov.zz", country="ZZ", size_bytes=size_bytes,
        via=FilterVia.TLD, depth=0, address=0xC0A80001, asn=asn,
        organization="org", registered_country="ZZ", gov_operated=False,
        category=category, server_country="ZZ", anycast=False,
        validation=ValidationMethod.UNRESOLVED,
    )


def _dataset(*country_datasets) -> GovernmentHostingDataset:
    return GovernmentHostingDataset(
        countries={cd.country: cd for cd in country_datasets},
        validation=ValidationStats(),
    )


@pytest.fixture
def empty_dataset():
    return _dataset(_empty_country())


# ------------------------------------------------------------- resilience

def test_outage_impact_over_empty_country(empty_dataset):
    assert outage_impact(empty_dataset, 13335) == {}


def test_single_points_of_failure_over_empty_country(empty_dataset):
    assert single_points_of_failure(empty_dataset) == {}


# ---------------------------------------------------------------- https

def test_https_adoption_over_empty_country(empty_dataset, world):
    assert country_https_adoption(world, empty_dataset) == {}
    assert global_https_prevalence(world, empty_dataset) == (0.0, 0.0)


# ----------------------------------------------------------- longitudinal

def test_trend_summary_of_no_overlap_is_well_defined(empty_dataset):
    deltas = compare_snapshots(empty_dataset, empty_dataset)
    assert deltas == {}
    assert trend_summary(deltas) == {
        "mean_delta": 0.0, "share_increasing": 0.0, "countries": 0.0,
    }


# -------------------------------------------------------- diversification

def test_dominant_category_of_empty_country_is_none():
    assert dominant_category(_empty_country()) is None


def test_dominant_category_of_zero_byte_records_is_none():
    zero = CountryDataset(
        country="ZZ", landing_count=1,
        records=[_record(HostingCategory.P3_GLOBAL, size_bytes=0)],
        discarded_url_count=0, unresolved_hostnames=[], depth_histogram={},
    )
    assert dominant_category(zero) is None


def test_dominant_category_ties_break_by_enum_order():
    tied = CountryDataset(
        country="ZZ", landing_count=2,
        records=[
            _record(HostingCategory.P3_GLOBAL, url="https://a.gov.zz/"),
            _record(HostingCategory.P3_LOCAL, url="https://b.gov.zz/"),
        ],
        discarded_url_count=0, unresolved_hostnames=[], depth_histogram={},
    )
    # P3_LOCAL is declared before P3_GLOBAL in HostingCategory
    assert dominant_category(tied) is HostingCategory.P3_LOCAL


def test_diversification_groupings_skip_empty_countries(empty_dataset):
    assert hhi_by_dominant_category(empty_dataset) == {}
    assert single_network_dependence(empty_dataset) == {}


def test_diversification_groupings_with_mixed_countries():
    populated = CountryDataset(
        country="AA", landing_count=1,
        records=[_record(HostingCategory.GOVT_SOE)],
        discarded_url_count=0, unresolved_hostnames=[], depth_histogram={},
    )
    mixed = _dataset(populated, _empty_country())
    groups = hhi_by_dominant_category(mixed, by_bytes=True)
    assert set(groups) == {HostingCategory.GOVT_SOE}
    dependence = single_network_dependence(mixed)
    assert dependence == {HostingCategory.GOVT_SOE: (1, 1)}
