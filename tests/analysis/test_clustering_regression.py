"""Tests for HCA clustering (Figure 5) and the OLS regression (Figure 12)."""

import numpy as np
import pytest

from repro.analysis.clustering import (
    cluster_assignments,
    country_signatures,
    dendrogram_order,
    dominant_category_of_cluster,
    ward_linkage,
)
from repro.analysis.regression import (
    FEATURE_NAMES,
    explanatory_regression,
    feature_matrix,
    variance_inflation_factors,
)
from repro.categories import HostingCategory


def test_signatures_rows_normalized(dataset):
    codes, signatures = country_signatures(dataset)
    assert len(codes) == len(signatures)
    assert "KR" not in codes
    for row in signatures:
        assert row.sum() == pytest.approx(1.0)


def test_ward_clustering_produces_three_branches(dataset):
    codes, signatures = country_signatures(dataset, by_bytes=True)
    linkage = ward_linkage(signatures)
    assignments = cluster_assignments(codes, linkage, n_clusters=3)
    assert set(assignments.values()) == {1, 2, 3}
    # Each main branch corresponds to a distinct dominant hosting source.
    dominants = {
        dominant_category_of_cluster(codes, signatures, assignments, cluster)
        for cluster in (1, 2, 3)
    }
    assert len(dominants) == 3
    assert HostingCategory.GOVT_SOE in dominants


def test_similar_countries_share_cluster(dataset):
    codes, signatures = country_signatures(dataset, by_bytes=True)
    linkage = ward_linkage(signatures)
    assignments = cluster_assignments(codes, linkage, n_clusters=3)
    # Brazil/Russia (Govt&SOE-dominant) cluster together, away from
    # Argentina (Global-dominant) -- the Section 5.3 observation.
    assert assignments["BR"] == assignments["RU"]
    assert assignments["BR"] != assignments["AR"]
    assert assignments["UY"] == assignments["IN"]


def test_dendrogram_order_is_permutation(dataset):
    codes, signatures = country_signatures(dataset)
    linkage = ward_linkage(signatures)
    order = dendrogram_order(linkage, codes)
    assert sorted(order) == sorted(codes)


def test_clustering_needs_two_rows():
    with pytest.raises(ValueError):
        ward_linkage(np.array([[1.0, 0.0, 0.0, 0.0]]))


def test_feature_matrix_standardized(dataset):
    codes, features, outcome = feature_matrix(dataset)
    assert features.shape == (len(codes), len(FEATURE_NAMES))
    assert np.allclose(features.mean(axis=0), 0, atol=1e-9)
    assert np.allclose(features.std(axis=0), 1, atol=1e-6)
    assert outcome.mean() == pytest.approx(0.0, abs=1e-9)


def test_regression_reproduces_figure12_shape(dataset):
    result = explanatory_regression(dataset)
    users = result.coefficient("internet_users")
    nri = result.coefficient("NRI")
    gdp = result.coefficient("GDP")
    # Paper: users positive and significant, NRI negative and significant,
    # GDP negative.
    assert users.estimate > 0
    assert users.significant
    assert nri.estimate < 0
    assert nri.significant
    assert gdp.estimate < 0.15  # negative or near zero
    assert result.n_observations >= 55
    assert 0 <= result.r_squared <= 1


def test_confidence_intervals_bracket_estimates(dataset):
    result = explanatory_regression(dataset)
    for coefficient in result.coefficients.values():
        assert coefficient.ci_low < coefficient.estimate < coefficient.ci_high
        assert coefficient.stderr > 0


def test_vifs_below_ten(dataset):
    vifs = variance_inflation_factors(dataset)
    assert set(vifs) == set(FEATURE_NAMES)
    for value in vifs.values():
        assert 1.0 <= value < 10.0
    # Internet users is the least collinear feature (Table 7).
    assert min(vifs, key=vifs.get) == "internet_users"
