"""Tests for hosting-mix and domestic/international analyses."""

import pytest

from repro.analysis.hosting import (
    category_fractions,
    country_breakdown,
    country_majority,
    global_breakdown,
    regional_breakdown,
)
from repro.analysis.registration import (
    LocationSplit,
    country_split,
    global_split,
    regional_split,
)
from repro.categories import HostingCategory
from repro.world.regions import Region


def test_global_breakdown_normalized(dataset):
    breakdown = global_breakdown(dataset)
    for view in ("urls", "bytes"):
        assert sum(breakdown[view].values()) == pytest.approx(1.0)


def test_global_breakdown_matches_figure2_shape(dataset):
    urls = global_breakdown(dataset)["urls"]
    # Paper: Govt&SOE 0.39, 3P Local 0.34, 3P Global 0.25, Regional 0.03.
    assert urls[HostingCategory.GOVT_SOE] == pytest.approx(0.39, abs=0.08)
    assert urls[HostingCategory.P3_LOCAL] == pytest.approx(0.34, abs=0.08)
    assert urls[HostingCategory.P3_GLOBAL] == pytest.approx(0.25, abs=0.08)
    assert urls[HostingCategory.P3_REGIONAL] < 0.10
    # Third parties dominate overall (62% of URLs in the paper).
    third_party = 1 - urls[HostingCategory.GOVT_SOE]
    assert third_party == pytest.approx(0.62, abs=0.10)


def test_category_fractions_empty():
    fractions = category_fractions([])
    assert all(value == 0.0 for value in fractions.values())


def test_regional_breakdown_covers_regions_with_data(dataset):
    regional = regional_breakdown(dataset)
    assert set(regional) == set(Region)
    for mix in regional.values():
        assert sum(mix.values()) == pytest.approx(1.0)


def test_regional_breakdown_shape(dataset):
    urls = regional_breakdown(dataset, by_bytes=False)
    # South Asia is Govt&SOE-heavy; SSA almost entirely third party.
    assert urls[Region.SA][HostingCategory.GOVT_SOE] > 0.55
    assert urls[Region.SSA][HostingCategory.GOVT_SOE] < 0.10
    bytes_mix = regional_breakdown(dataset, by_bytes=True)
    assert bytes_mix[Region.SA][HostingCategory.GOVT_SOE] > 0.7
    # North America leans on Global providers.
    assert urls[Region.NA][HostingCategory.P3_GLOBAL] > 0.4


def test_regional_weightings_differ(dataset):
    by_country = regional_breakdown(dataset, weighting="country")
    by_url = regional_breakdown(dataset, weighting="url")
    assert by_country.keys() == by_url.keys()


def test_country_breakdown_matches_country_dataset(dataset):
    breakdown = country_breakdown(dataset)
    assert "UY" in breakdown
    uruguay = breakdown["UY"]["bytes"]
    assert uruguay[HostingCategory.GOVT_SOE] > 0.8


def test_country_majority_examples(dataset):
    majority = country_majority(dataset)
    assert majority["UY"] == "Govt&SOE"
    assert majority["AR"] == "3P"
    assert majority["CA"] == "3P"
    assert "KR" not in majority


def test_location_split_validation():
    with pytest.raises(ValueError):
        LocationSplit(domestic=0.5, international=0.6)
    split = LocationSplit(0.0, 0.0)
    assert split.domestic == 0.0


def test_global_split_matches_figure6(dataset):
    splits = global_split(dataset)
    # Paper: 87% of URLs served domestically, 77% domestically registered.
    assert splits["geolocation"].domestic == pytest.approx(0.87, abs=0.07)
    assert splits["whois"].domestic == pytest.approx(0.77, abs=0.09)
    # Registration is *more* international than physical location.
    assert splits["whois"].international > splits["geolocation"].international


def test_regional_split_shape(dataset):
    location = regional_split(dataset, view="geolocation")
    assert location[Region.NA].domestic > 0.9
    assert location[Region.SSA].domestic < 0.65
    registration = regional_split(dataset, view="whois")
    assert registration[Region.SSA].domestic < location[Region.SSA].domestic + 0.2


def test_regional_split_rejects_unknown_view(dataset):
    with pytest.raises(ValueError):
        regional_split(dataset, view="bogus")


def test_country_split_mexico(dataset):
    splits = country_split(dataset)
    assert splits["MX"]["geolocation"].international == pytest.approx(0.79, abs=0.1)
