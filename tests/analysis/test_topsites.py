"""Tests for the governments-vs-topsites comparison (Appendix D)."""

import pytest

from repro.analysis.topsites import (
    TopsiteAnalyzer,
    analyze_topsites,
    government_subset_breakdown,
    government_subset_location,
)
from repro.websim.topsites import COMPARISON_COUNTRIES, TopsiteHosting


@pytest.fixture(scope="module")
def report(world, pipeline, dataset):
    return analyze_topsites(world, dataset, geolocator=pipeline.geolocator)


def test_report_covers_comparison_countries(report, world):
    measured = {record.country for record in report.records}
    assert measured == set(COMPARISON_COUNTRIES)
    expected_sites = sum(len(v) for v in world.topsites.values())
    assert len(report.records) == expected_sites


def test_topsites_prefer_global_providers(report):
    fractions = report.hosting_fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)
    # Paper: 78% of topsite URLs on Global providers, 18% self-hosted.
    assert fractions[TopsiteHosting.GLOBAL] == pytest.approx(0.78, abs=0.12)
    assert fractions[TopsiteHosting.SELF_HOSTING] == pytest.approx(0.18, abs=0.08)
    assert fractions[TopsiteHosting.GLOBAL] > fractions[TopsiteHosting.SELF_HOSTING]


def test_governments_prefer_self_hosting_relative_to_topsites(report, dataset):
    gov = government_subset_breakdown(dataset)
    top = report.hosting_fractions()
    assert gov["urls"][TopsiteHosting.SELF_HOSTING] > top[TopsiteHosting.SELF_HOSTING]
    assert top[TopsiteHosting.GLOBAL] > gov["urls"][TopsiteHosting.GLOBAL]


def test_location_contrast_figure7(report, dataset):
    gov = government_subset_location(dataset)
    top_location = report.location_split()
    # Governments host domestically far more often than topsites.
    assert gov["geolocation"].domestic > top_location.domestic + 0.2
    top_registration = report.registration_location_split()
    assert gov["whois"].domestic > top_registration.domestic + 0.2
    # Topsites: roughly half the URLs are served from abroad (paper: 51%).
    assert 0.3 < top_location.domestic < 0.7


def test_self_hosting_heuristic_matches_truth(report, world):
    """The CNAME/SAN heuristic recovers the ground-truth hosting labels."""
    truth_by_host = {
        t.hostname: t.truth_hosting
        for sites in world.topsites.values()
        for t in sites
    }
    correct = total = 0
    for record in report.records:
        total += 1
        truth = truth_by_host[record.hostname]
        if (record.hosting is TopsiteHosting.SELF_HOSTING) == (
            truth is TopsiteHosting.SELF_HOSTING
        ):
            correct += 1
    assert correct / total > 0.95


def test_byte_fractions_also_global_heavy(report):
    fractions = report.hosting_fractions(by_bytes=True)
    assert fractions[TopsiteHosting.GLOBAL] > 0.5
