"""Tests for the DNS-dependency and HTTPS-adoption extensions."""

import pytest

from repro.analysis.dnsdep import (
    country_dns_dependency,
    global_third_party_dns_share,
    managed_dns_footprints,
)
from repro.analysis.https_adoption import (
    country_https_adoption,
    global_https_prevalence,
    https_development_correlation,
)
from repro.urltools import registrable_domain


def test_every_measured_domain_has_a_delegation(world, dataset):
    missing = []
    for record in dataset.iter_records():
        domain = registrable_domain(record.hostname)
        if world.nameservers.lookup(domain) is None:
            missing.append(domain)
    assert not missing


def test_delegation_nameserver_shapes(world):
    for delegation in world.nameservers:
        assert delegation.nameservers
        if delegation.self_hosted:
            assert any(
                ns.endswith(delegation.domain) for ns in delegation.nameservers
            )


def test_third_party_dns_share_is_substantial(world, dataset):
    share = global_third_party_dns_share(world, dataset)
    # The e-government DNS studies report heavy third-party reliance.
    assert 0.3 < share < 0.9


def test_managed_dns_concentration(world, dataset):
    footprints = managed_dns_footprints(world, dataset)
    assert footprints
    # Cloudflare's managed DNS leads the external providers.
    top_asn = max(footprints, key=footprints.get)
    assert top_asn == 13335
    assert footprints[top_asn] > 20


def test_country_reports_are_consistent(world, dataset):
    reports = country_dns_dependency(world, dataset)
    assert "US" in reports
    for report in reports.values():
        assert 0 <= report.third_party_share <= 1
        assert report.top_provider_share <= report.third_party_share + 1e-9
        assert report.domains > 0


def test_gouv_nc_is_self_hosted(world):
    delegation = world.nameservers.lookup("gouv.nc")
    assert delegation is not None
    assert delegation.self_hosted
    assert delegation.provider_asn == 18200


def test_https_prevalence_bounds(world, dataset):
    have, valid = global_https_prevalence(world, dataset)
    assert 0 < valid <= have <= 1
    # Large fractions of government hostnames lack valid HTTPS
    # (Singanamalla et al. report >70% lacking it in 2020).
    assert valid < 0.8


def test_https_reports_per_country(world, dataset):
    reports = country_https_adoption(world, dataset)
    assert "BR" in reports
    for report in reports.values():
        assert 0 <= report.with_valid_certificate <= report.with_certificate <= 1


def test_https_tracks_development(world, dataset):
    assert https_development_correlation(world, dataset) > 0


def test_nameserver_registry_rejects_duplicates():
    from repro.netsim.nameservers import NsDelegation, NsRegistry

    registry = NsRegistry()
    delegation = NsDelegation(
        domain="health.gov.br", nameservers=("ns1.health.gov.br",),
        provider_asn=1, self_hosted=True,
    )
    registry.register(delegation)
    with pytest.raises(ValueError):
        registry.register(delegation)
    assert registry.lookup("HEALTH.GOV.BR") is delegation
    assert len(registry) == 1


def test_delegation_requires_nameservers():
    from repro.netsim.nameservers import NsDelegation

    with pytest.raises(ValueError):
        NsDelegation(domain="x", nameservers=(), provider_asn=1,
                     self_hosted=True)
