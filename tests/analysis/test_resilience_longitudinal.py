"""Tests for the outage-resilience and longitudinal extensions."""

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.analysis.longitudinal import compare_snapshots, trend_summary
from repro.analysis.resilience import (
    outage_impact,
    single_points_of_failure,
    worst_global_outage,
)


def test_outage_impact_bounds(dataset):
    # Cloudflare is present in many countries; its outage hurts somewhere.
    impacts = outage_impact(dataset, 13335)
    assert impacts
    for impact in impacts.values():
        assert 0 < impact.url_share_lost <= 1
        assert 0 <= impact.byte_share_lost <= 1


def test_outage_of_unknown_asn_is_noop(dataset):
    assert outage_impact(dataset, 999_999_999) == {}


def test_single_points_of_failure_include_concentrated_countries(dataset):
    spofs = single_points_of_failure(dataset)
    # Uruguay serves nearly everything from one state network.
    assert "UY" in spofs
    asn, share = spofs["UY"]
    assert share > 0.5
    # Diversified Global-dominant countries mostly avoid the list.
    assert len(spofs) < len(dataset.countries)


def test_worst_global_outage_is_a_major_provider(dataset):
    asn, affected, mean_loss = worst_global_outage(dataset)
    assert affected >= 3
    assert 0 < mean_loss <= 1
    assert asn != 0


def _measure(drift):
    world = SyntheticWorld.generate(WorldConfig(
        seed=21, scale=0.04, countries=("BR", "ES", "ID", "EG"),
        include_topsites=False, third_party_drift=drift,
    ))
    return Pipeline(world).run(["BR", "ES", "ID", "EG"])


@pytest.fixture(scope="module")
def snapshots():
    return _measure(0.0), _measure(0.15)


def test_drift_increases_third_party_dependency(snapshots):
    before, after = snapshots
    deltas = compare_snapshots(before, after)
    assert set(deltas) == {"BR", "ES", "ID", "EG"}
    summary = trend_summary(deltas)
    assert summary["mean_delta"] > 0
    assert summary["share_increasing"] >= 0.75


def test_trend_summary_of_no_overlap_is_empty():
    assert trend_summary({}) == {
        "mean_delta": 0.0, "share_increasing": 0.0, "countries": 0.0,
    }


def test_drift_profile_validation():
    from repro.world.profiles import drift_profile, get_profile

    profile = get_profile("BR")
    assert drift_profile(profile, 0.0) is profile
    drifted = drift_profile(profile, 0.2)
    assert sum(drifted.url_mix.values()) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        drift_profile(profile, 0.9)
