"""Tests for global-provider footprints and HHI diversification."""

import pytest

from repro.analysis.diversification import (
    country_network_hhi,
    dominant_category,
    hhi,
    hhi_by_dominant_category,
    single_network_dependence,
)
from repro.analysis.providers import (
    global_provider_asns,
    global_provider_footprints,
    provider_byte_reliance,
    top_reliances,
)
from repro.categories import HostingCategory


def test_cloudflare_leads_footprints(dataset):
    footprints = global_provider_footprints(dataset)
    assert footprints, "expected global providers in the dataset"
    leader = footprints[0]
    assert leader.asn == 13335
    # Cloudflare serves far more countries than the runner-up (Figure 10).
    if len(footprints) > 2:
        assert leader.country_count >= 1.5 * footprints[2].country_count


def test_footprints_sorted_descending(dataset):
    footprints = global_provider_footprints(dataset)
    counts = [fp.country_count for fp in footprints]
    assert counts == sorted(counts, reverse=True)
    for footprint in footprints:
        assert footprint.country_count == len(footprint.countries)


def test_global_asns_are_never_government(dataset):
    gov_asns = {r.asn for r in dataset.iter_records() if r.gov_operated}
    assert not (global_provider_asns(dataset) & gov_asns)


def test_byte_reliance_within_unit_interval(dataset):
    reliance = provider_byte_reliance(dataset)
    assert reliance
    for fraction in reliance.values():
        assert 0.0 <= fraction <= 1.0


def test_top_reliances_are_high(dataset):
    top = top_reliances(dataset, limit=3)
    assert len(top) == 3
    # The paper's top single-provider reliances are 97%/72%/58%...
    assert top[0][3] > 0.5
    assert top[0][3] >= top[1][3] >= top[2][3]


def test_hhi_bounds_and_extremes():
    assert hhi([1.0]) == pytest.approx(1.0)
    assert hhi([1, 1, 1, 1]) == pytest.approx(0.25)
    assert hhi([10, 0.0001]) == pytest.approx(1.0, abs=0.01)
    with pytest.raises(ValueError):
        hhi([0.0, 0.0])


def test_country_hhi_in_range(dataset):
    values = country_network_hhi(dataset)
    assert values
    for value in values.values():
        assert 0.0 < value <= 1.0


def test_uruguay_is_concentrated_argentina_is_not(dataset):
    values = country_network_hhi(dataset, by_bytes=True)
    assert values["UY"] > values["AR"]
    assert values["UY"] > 0.5


def test_dominant_category_grouping(dataset):
    assert dominant_category(dataset.country("UY")) is HostingCategory.GOVT_SOE
    assert dominant_category(dataset.country("IT")) is HostingCategory.P3_LOCAL
    groups = hhi_by_dominant_category(dataset)
    assert HostingCategory.GOVT_SOE in groups
    assert HostingCategory.P3_GLOBAL in groups


def test_single_network_dependence_shape(dataset):
    dependence = single_network_dependence(dataset)
    gov_above, gov_total = dependence[HostingCategory.GOVT_SOE]
    global_above, global_total = dependence[HostingCategory.P3_GLOBAL]
    assert gov_total > 0 and global_total > 0
    # Paper: 63% of Govt&SOE-dominant countries depend on a single network
    # vs 32% of Global-dominant ones; require the ordering.
    assert gov_above / gov_total > global_above / global_total
