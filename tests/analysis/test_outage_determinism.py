"""worst_global_outage must break exact ties deterministically.

Two networks can disrupt the same number of governments with the same
mean URL-share loss; before the tie-break, the winner depended on ASN
iteration order and comparative scenario reports could name different
providers run-to-run.  The contract: ties go to the organization name
that sorts first, then the lower ASN — in both the reference analysis
and the engine baseline it is validated against.
"""

from __future__ import annotations

import pytest

from repro.analysis.engine.baseline import baseline_worst_global_outage
from repro.analysis.resilience import worst_global_outage
from repro.categories import HostingCategory
from repro.core.dataset import (
    CountryDataset,
    GovernmentHostingDataset,
    UrlRecord,
)
from repro.core.geolocation import ValidationMethod, ValidationStats
from repro.core.urlfilter import FilterVia


def _record(country: str, asn: int, organization: str) -> UrlRecord:
    hostname = f"www.gov.{country.lower()}"
    return UrlRecord(
        url=f"https://{hostname}/", hostname=hostname, country=country,
        size_bytes=10, via=FilterVia.TLD, depth=0, address=0xC0A80001,
        asn=asn, organization=organization, registered_country=country,
        gov_operated=False, category=HostingCategory.P3_GLOBAL,
        server_country=country, anycast=False,
        validation=ValidationMethod.UNRESOLVED,
    )


def _single_asn_country(country: str, asn: int, org: str) -> CountryDataset:
    return CountryDataset(
        country=country, landing_count=1,
        records=[_record(country, asn, org)],
        discarded_url_count=0, unresolved_hostnames=[], depth_histogram={},
    )


def _dataset(*country_datasets) -> GovernmentHostingDataset:
    return GovernmentHostingDataset(
        countries={cd.country: cd for cd in country_datasets},
        validation=ValidationStats(),
    )


@pytest.fixture
def tied_by_org():
    """Two ASNs, each wiping out exactly one government: a perfect tie.

    The numerically smaller ASN carries the lexicographically *larger*
    organization name, so a numeric-order winner and the contractual
    name-order winner differ.
    """
    return _dataset(
        _single_asn_country("AA", 64500, "Zeta Networks"),
        _single_asn_country("BB", 64501, "Alpha Cloud"),
    )


@pytest.fixture
def tied_by_asn():
    """Same organization on both sides: the lower ASN must win."""
    return _dataset(
        _single_asn_country("AA", 64510, "Same Org"),
        _single_asn_country("BB", 64509, "Same Org"),
    )


def test_exact_tie_goes_to_first_organization_name(tied_by_org):
    asn, affected, mean_loss = worst_global_outage(tied_by_org)
    assert (affected, mean_loss) == (1, 1.0)
    assert asn == 64501  # "Alpha Cloud" < "Zeta Networks"


def test_org_name_tie_falls_back_to_lower_asn(tied_by_asn):
    asn, affected, mean_loss = worst_global_outage(tied_by_asn)
    assert (affected, mean_loss) == (1, 1.0)
    assert asn == 64509


def test_engine_baseline_agrees_on_ties(tied_by_org, tied_by_asn):
    for dataset in (tied_by_org, tied_by_asn):
        assert baseline_worst_global_outage(dataset) == \
            worst_global_outage(dataset)


def test_result_is_stable_across_repeated_calls(dataset):
    first = worst_global_outage(dataset)
    assert all(
        worst_global_outage(dataset) == first for _ in range(3)
    )
    assert baseline_worst_global_outage(dataset) == first
