"""Tests for the affordability extension."""

import pytest

from repro.analysis.affordability import (
    affordability_gap,
    affordability_ranking,
    country_affordability,
)
from repro.world.affordability import (
    DATA_PRICE_USD_PER_GB,
    daily_income_usd,
    data_price_usd_per_gb,
)
from repro.world.countries import COUNTRIES


def test_price_table_covers_sample():
    assert set(DATA_PRICE_USD_PER_GB) == set(COUNTRIES)
    for price in DATA_PRICE_USD_PER_GB.values():
        assert 0 < price < 20


def test_price_lookup_case_insensitive():
    assert data_price_usd_per_gb("in") == DATA_PRICE_USD_PER_GB["IN"]


def test_daily_income_proxy():
    assert daily_income_usd("US") == pytest.approx(76_000 / 365)
    assert daily_income_usd("PK") < daily_income_usd("CH")


def test_country_affordability_fields(dataset):
    report = country_affordability(dataset, "BR")
    assert report.median_landing_bytes > 0
    assert report.visit_cost_usd > 0
    assert 0 < report.cost_share_of_daily_income < 1


def test_country_without_data_raises(dataset):
    with pytest.raises(ValueError):
        country_affordability(dataset, "KR")


def test_ranking_sorted_and_complete(dataset):
    ranking = affordability_ranking(dataset)
    measured = [c for c, cd in dataset.countries.items() if cd.records]
    assert len(ranking) == len(measured)
    shares = [report.cost_share_of_daily_income for report in ranking]
    assert shares == sorted(shares, reverse=True)


def test_gap_disfavours_poor_countries(dataset):
    # The same page weights cost (relatively) far more in low-income
    # countries -- the Habib et al. headline.
    gap = affordability_gap(dataset)
    assert gap > 2.0


def test_gap_requires_enough_countries(tiny_dataset):
    with pytest.raises(ValueError):
        affordability_gap(tiny_dataset)
