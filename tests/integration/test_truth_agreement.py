"""Measured-vs-truth agreement checks across the whole shared world."""

from repro.core.urlfilter import FilterVia


def test_filter_via_matches_expected_heuristic(dataset, world):
    """Every hostname is picked up by exactly the heuristic the generator
    expected (TLD pattern, directory domain match, or SAN verification)."""
    mismatches = []
    for code, country_dataset in dataset.countries.items():
        seen: dict[str, FilterVia] = {}
        for record in country_dataset.records:
            seen.setdefault(record.hostname, record.via)
        for hostname, via in seen.items():
            truth = world.truth.hosts.get(hostname)
            if truth is None:
                continue
            if via.value != truth.expected_filter:
                mismatches.append((hostname, truth.expected_filter, via.value))
    assert not mismatches, mismatches[:10]


def test_registration_country_matches_truth(dataset, world):
    for record in dataset.iter_records():
        truth = world.truth.hosts.get(record.hostname)
        if truth is not None:
            assert record.registered_country == truth.registered_country


def test_confirmed_locations_match_truth_serving_country(dataset, world):
    """When geolocation confirms a location, it is (almost always) the true
    serving country; the rare exceptions are small countries whose road
    threshold admits a nearby foreign server."""
    wrong = total = 0
    for record in dataset.iter_records():
        if record.excluded:
            continue
        truth = world.truth.hosts.get(record.hostname)
        if truth is None:
            continue
        total += 1
        if record.server_country != truth.serving_country:
            wrong += 1
    assert total > 0
    assert wrong / total < 0.05
