"""Integration tests asserting the paper's headline findings end to end.

These are the 'key findings' boxes of Sections 5-7, checked over the
shared session world.  Benchmarks perform looser, larger-scale versions
of the same checks with printed comparisons.
"""

import pytest

from repro.analysis import (
    bilateral_share,
    country_majority,
    gdpr_compliance,
    global_breakdown,
    global_provider_footprints,
    global_split,
    regional_breakdown,
    same_region_share,
    single_network_dependence,
)
from repro.categories import HostingCategory
from repro.world.regions import Region


def test_finding_third_party_dominance(dataset):
    """Governments deliver ~62% of URLs via third parties."""
    urls = global_breakdown(dataset)["urls"]
    third_party = sum(v for c, v in urls.items() if c.is_third_party)
    assert third_party == pytest.approx(0.62, abs=0.10)


def test_finding_regional_variation(dataset):
    """SA/MENA byte mass is Govt&SOE; NA is Global (Section 5 box)."""
    bytes_mix = regional_breakdown(dataset, by_bytes=True)
    assert bytes_mix[Region.SA][HostingCategory.GOVT_SOE] > 0.7
    assert bytes_mix[Region.MENA][HostingCategory.GOVT_SOE] > 0.5
    assert bytes_mix[Region.NA][HostingCategory.P3_GLOBAL] > 0.5
    ssa = bytes_mix[Region.SSA]
    third = ssa[HostingCategory.P3_GLOBAL] + ssa[HostingCategory.P3_LOCAL] + \
        ssa[HostingCategory.P3_REGIONAL]
    assert third > 0.9


def test_finding_neighbors_diverge(dataset):
    """Argentina and Uruguay sit on opposite sides of the divide."""
    majority = country_majority(dataset)
    assert majority["AR"] == "3P"
    assert majority["UY"] == "Govt&SOE"


def test_finding_domestic_preference(dataset):
    """87% of URLs served domestically; 77% domestically registered."""
    splits = global_split(dataset)
    assert splits["geolocation"].domestic == pytest.approx(0.87, abs=0.07)
    assert splits["whois"].domestic == pytest.approx(0.77, abs=0.10)


def test_finding_cross_border_stays_regional_in_eca_eap(dataset):
    shares = same_region_share(dataset)
    assert shares[Region.ECA] > 0.75
    assert shares[Region.EAP] > 0.6
    for region in (Region.LAC, Region.MENA, Region.SA):
        assert shares.get(region, 0.0) < 0.15


def test_finding_bilateral_relationships(dataset):
    assert bilateral_share(dataset, "MX", "US") > 0.6
    assert bilateral_share(dataset, "NZ", "AU") > 0.2
    assert bilateral_share(dataset, "FR", "NC") > 0.1


def test_finding_gdpr(dataset):
    assert gdpr_compliance(dataset) > 0.93


def test_finding_cloudflare_centralization(dataset):
    footprints = global_provider_footprints(dataset)
    assert footprints[0].asn == 13335
    runner_up = footprints[1].country_count if len(footprints) > 1 else 0
    assert footprints[0].country_count > runner_up


def test_finding_on_premise_concentration(dataset):
    dependence = single_network_dependence(dataset)
    gov_above, gov_total = dependence[HostingCategory.GOVT_SOE]
    global_above, global_total = dependence[HostingCategory.P3_GLOBAL]
    assert gov_above / gov_total > global_above / global_total


def test_finding_india_domestic(dataset):
    india = dataset.countries["IN"]
    included = india.included_records()
    domestic = sum(1 for r in included if r.server_domestic)
    assert domestic / len(included) > 0.95


def test_finding_china_japan(dataset):
    assert bilateral_share(dataset, "CN", "JP") == pytest.approx(0.26, abs=0.18)
