"""Cross-cutting invariants over a measured dataset.

These hold for any seed and scale; they pin down the relationships
between the analyses rather than specific calibrated values.
"""

import pytest

from repro.analysis.crossborder import flows
from repro.analysis.hosting import category_fractions, global_breakdown
from repro.analysis.registration import registration_split, server_split
from repro.categories import HostingCategory
from repro.reporting.sankey import build_sankey


def test_fractions_sum_to_one_everywhere(dataset):
    for code, country_dataset in dataset.countries.items():
        if not country_dataset.records:
            continue
        assert sum(country_dataset.category_url_fractions().values()) == \
            pytest.approx(1.0), code
        assert sum(country_dataset.category_byte_fractions().values()) == \
            pytest.approx(1.0), code


def test_gov_operated_iff_govt_soe_category(dataset):
    for record in dataset.iter_records():
        assert record.gov_operated == (
            record.category is HostingCategory.GOVT_SOE
        )


def test_flow_totals_match_foreign_record_counts(dataset):
    total_flow_urls = sum(f.url_count for f in flows(dataset, "server"))
    foreign_records = sum(
        1 for r in dataset.iter_records()
        if r.server_country not in (None, r.country)
    )
    assert total_flow_urls == foreign_records


def test_sankey_consistent_with_flows(dataset):
    diagram = build_sankey(dataset, basis="server")
    assert sum(link.urls for link in diagram.links) == sum(
        f.url_count for f in flows(dataset, "server")
    )


def test_registration_and_server_splits_bounded(dataset):
    for country_dataset in dataset.countries.values():
        if not country_dataset.records:
            continue
        for split in (registration_split(country_dataset.records),
                      server_split(country_dataset.records)):
            assert 0.0 <= split.domestic <= 1.0
            assert split.domestic + split.international in (0.0, pytest.approx(1.0))


def test_global_breakdown_equals_pooled_fractions(dataset):
    pooled = category_fractions(list(dataset.iter_records()))
    assert global_breakdown(dataset)["urls"] == pooled


def test_depth_never_exceeds_crawl_limit(dataset):
    for record in dataset.iter_records():
        assert 0 <= record.depth <= 7


def test_anycast_records_flagged_consistently(dataset, world):
    for record in dataset.iter_records():
        if record.anycast:
            # The pipeline trusts MAnycast2; flagged addresses must come
            # from the snapshot.
            assert world.manycast.is_anycast(record.address)


def test_landing_counts_bound_url_counts(dataset):
    for country_dataset in dataset.countries.values():
        if country_dataset.records:
            assert country_dataset.url_count >= country_dataset.landing_count * 0
            assert country_dataset.internal_count >= 0
