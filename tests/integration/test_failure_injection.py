"""Failure-injection tests: the pipeline degrades gracefully, never crashes.

Each test breaks one substrate the way the real Internet breaks --
lapsed DNS, missing certificates, empty PeeringDB, dead ICMP, an empty
geolocation database -- and checks the pipeline completes with the
expected degradation.
"""

import dataclasses

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.core.geolocation import Geolocator, ValidationMethod
from repro.measure.ipinfo import IpInfoDatabase
from repro.measure.peeringdb import PeeringDb
from repro.netsim.tls import CertificateStore

_COUNTRIES = ("BR", "MA")


@pytest.fixture()
def fresh_world():
    return SyntheticWorld.generate(WorldConfig(
        seed=17, scale=0.04, countries=_COUNTRIES, include_topsites=False,
    ))


def test_lapsed_dns_records_become_unresolved_hostnames(fresh_world):
    victims = [
        t.hostname for t in fresh_world.truth.hosts_of("BR")
    ][:2]
    for hostname in victims:
        assert fresh_world.zone.remove(hostname)
    dataset = Pipeline(fresh_world).run(list(_COUNTRIES))
    brazil = dataset.countries["BR"]
    for hostname in victims:
        assert hostname in brazil.unresolved_hostnames
        assert hostname not in brazil.hostnames
    # The rest of the country still measures.
    assert brazil.records


def test_missing_certificates_only_lose_san_sites(fresh_world):
    stripped = dataclasses.replace(fresh_world, certificates=CertificateStore())
    dataset = Pipeline(stripped).run(list(_COUNTRIES))
    from repro.core.urlfilter import FilterVia

    vias = {record.via for record in dataset.iter_records()}
    assert FilterVia.SAN not in vias
    assert FilterVia.TLD in vias and FilterVia.DOMAIN in vias


def test_empty_peeringdb_still_classifies_governments(fresh_world):
    stripped = dataclasses.replace(fresh_world, peeringdb=PeeringDb())
    dataset = Pipeline(stripped).run(list(_COUNTRIES))
    gov_records = [r for r in dataset.iter_records() if r.gov_operated]
    # WHOIS organizations and web searches still reveal most governments.
    assert gov_records


def test_empty_websearch_costs_soe_recall_only(fresh_world):
    stripped = dataclasses.replace(fresh_world, websearch={})
    baseline = Pipeline(fresh_world).run(list(_COUNTRIES))
    degraded = Pipeline(stripped).run(list(_COUNTRIES))
    gov_baseline = sum(1 for r in baseline.iter_records() if r.gov_operated)
    gov_degraded = sum(1 for r in degraded.iter_records() if r.gov_operated)
    assert gov_degraded <= gov_baseline
    assert gov_degraded > 0


def test_total_icmp_blackout_pushes_everything_to_multistage(fresh_world):
    for truth in fresh_world.truth.hosts.values():
        fresh_world.fabric.mark_unresponsive(truth.address)
    dataset = Pipeline(fresh_world).run(list(_COUNTRIES))
    assert dataset.validation.unicast_ap == 0
    # The multistage fallbacks (PTR/IPmap) keep most addresses located.
    table = dataset.validation.table4()
    assert table["unicast"]["MG"] > 0.7
    # Anycast verification requires pings, so anycast addresses are lost.
    assert dataset.validation.anycast_ap == 0


def test_empty_ipinfo_survives_via_single_radius(fresh_world):
    pipeline = Pipeline(fresh_world)
    blind_geolocator = Geolocator(
        ipinfo=IpInfoDatabase(),
        manycast=fresh_world.manycast,
        atlas=pipeline.atlas,
        hoiho=fresh_world.hoiho,
        ipmap=fresh_world.ipmap,
    )
    degraded = Pipeline(fresh_world, geolocator=blind_geolocator)
    dataset = degraded.run(list(_COUNTRIES))
    located = [r for r in dataset.iter_records() if not r.excluded]
    assert located
    # Without step 1 there is nothing for active probing to verify.
    assert all(
        r.validation is not ValidationMethod.ACTIVE_PROBING or r.anycast
        for r in located
    )


def test_crawler_survives_partially_broken_web(fresh_world):
    # Remove one deep page: its subtree becomes unreachable, nothing raises.
    site = next(
        s for s in fresh_world.web.iter_sites()
        if s.country == "BR" and len(s.pages) > 3
    )
    victim = next(url for url, page in site.pages.items() if page.depth == 1)
    del fresh_world.web._pages[victim]
    dataset = Pipeline(fresh_world).run(["BR"])
    assert dataset.countries["BR"].records
