"""End-to-end determinism and scale-consistency tests."""

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.analysis import global_breakdown


def _run(seed, scale, countries):
    world = SyntheticWorld.generate(
        WorldConfig(seed=seed, scale=scale, countries=countries,
                    include_topsites=False)
    )
    return Pipeline(world).run(list(countries))


def test_pipeline_is_fully_deterministic():
    countries = ("BR", "MA", "JP")
    first = _run(3, 0.04, countries)
    second = _run(3, 0.04, countries)
    records_a = sorted(first.iter_records(), key=lambda r: r.url)
    records_b = sorted(second.iter_records(), key=lambda r: r.url)
    assert records_a == records_b
    assert first.validation.table4() == second.validation.table4()


def test_different_seed_different_measurements():
    countries = ("BR",)
    first = _run(3, 0.04, countries)
    second = _run(4, 0.04, countries)
    urls_a = {record.url for record in first.iter_records()}
    urls_b = {record.url for record in second.iter_records()}
    assert urls_a != urls_b


def test_scale_preserves_country_mixes():
    """Category mixes are scale-invariant up to quantization noise."""
    countries = ("US", "BE")
    small = _run(7, 0.03, countries)
    large = _run(7, 0.12, countries)
    for code in countries:
        mix_small = small.countries[code].category_url_fractions()
        mix_large = large.countries[code].category_url_fractions()
        for category, share in mix_large.items():
            assert mix_small[category] == pytest.approx(share, abs=0.22), (
                code, category
            )


def test_global_breakdown_stable_across_seeds(small_config):
    """The Figure 2 shape is a property of the world, not of one seed."""
    mixes = []
    for seed in (11, 12):
        world = SyntheticWorld.generate(
            WorldConfig(seed=seed, scale=0.03, include_topsites=False)
        )
        dataset = Pipeline(world).run()
        mixes.append(global_breakdown(dataset)["urls"])
    for category in mixes[0]:
        assert mixes[0][category] == pytest.approx(
            mixes[1][category], abs=0.08
        )
