"""Tests for seed derivation and configuration validation."""

import pytest

from repro.datagen.config import WorldConfig
from repro.datagen.seeds import derive_rng, derive_seed


def test_seed_is_deterministic():
    assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")


def test_seed_depends_on_components():
    assert derive_seed(42, "a") != derive_seed(42, "b")
    assert derive_seed(42, "a", "b") != derive_seed(42, "ab")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_component_separator_prevents_ambiguity():
    assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")


def test_derived_rngs_reproduce_streams():
    a = derive_rng(9, "x")
    b = derive_rng(9, "x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_config_defaults_valid():
    config = WorldConfig()
    assert config.scale > 0
    assert abs(sum(config.depth_distribution) - 1.0) < 1e-9


def test_config_rejects_bad_scale():
    with pytest.raises(ValueError):
        WorldConfig(scale=0)


def test_config_rejects_bad_probability():
    with pytest.raises(ValueError):
        WorldConfig(unicast_icmp_rate=1.5)


def test_config_rejects_bad_depth_distribution():
    with pytest.raises(ValueError):
        WorldConfig(depth_distribution=(0.5, 0.1))


def test_config_rejects_overfull_ptr_rates():
    with pytest.raises(ValueError):
        WorldConfig(ptr_city_rate=0.6, ptr_ntt_rate=0.3, ptr_opaque_rate=0.2)


def test_country_codes_default_is_whole_sample():
    assert len(WorldConfig().country_codes()) == 61


def test_country_codes_validates_members():
    config = WorldConfig(countries=("br", "US"))
    assert config.country_codes() == ["BR", "US"]
    with pytest.raises(ValueError):
        WorldConfig(countries=("XX",)).country_codes()
