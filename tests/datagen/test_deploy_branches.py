"""Unit tests for the generator's deployment branches.

Drives ``_Generator._deploy_host`` directly to cover every category /
foreign / anycast combination, including the degradation paths.
"""

import pytest

from repro.categories import HostingCategory
from repro.datagen.config import WorldConfig
from repro.datagen.generator import _Generator
from repro.datagen.seeds import derive_rng
from repro.world.profiles import get_profile


@pytest.fixture(scope="module")
def generator():
    gen = _Generator(WorldConfig(seed=33, scale=0.02, countries=("BR", "DE")))
    gen._build_global_providers()
    gen._build_adoption()
    gen._build_regional_providers()
    from repro.world.countries import get_country

    for code in ("BR", "DE"):
        gen._build_country_ases(get_country(code), get_profile(code))
    # Deployments always happen inside a customer-country scope (set by
    # _build_country); these unit tests deploy for BR directly.
    gen._scope_code = "BR"
    return gen


def _deploy(generator, n, **kwargs):
    rng = derive_rng(99, "deploy", kwargs, n)
    defaults = dict(
        hostname=f"unit-test-{n}.gov.br", code="BR",
        category=HostingCategory.GOVT_SOE, foreign=False, partner=None,
        profile=get_profile("BR"), rng=rng,
    )
    defaults.update(kwargs)
    return generator._deploy_host(**defaults)


def test_govt_deployment_is_domestic_government(generator):
    truth = _deploy(generator, 1)
    assert truth.category is HostingCategory.GOVT_SOE
    assert truth.serving_country == "BR"
    assert truth.registered_country == "BR"
    autonomous_system = generator.registry.get_as(truth.asn)
    assert autonomous_system.kind.is_government_operated


def test_local_deployment_domestic(generator):
    truth = _deploy(generator, 2, category=HostingCategory.P3_LOCAL)
    assert truth.serving_country == "BR"
    assert truth.registered_country == "BR"


def test_local_foreign_uses_intl_provider(generator):
    truth = _deploy(generator, 3, category=HostingCategory.P3_LOCAL,
                    foreign=True, partner="US")
    assert truth.registered_country == "BR"
    assert truth.serving_country == "US"
    assert generator.registry.get_as(truth.asn).name.startswith("GLOBALEDGE")


def test_regional_deployment_registered_abroad(generator):
    truth = _deploy(generator, 4, category=HostingCategory.P3_REGIONAL)
    assert truth.registered_country != "BR"
    assert truth.serving_country == "BR"


def test_regional_foreign_serves_from_hub_or_partner(generator):
    truth = _deploy(generator, 5, category=HostingCategory.P3_REGIONAL,
                    foreign=True, partner="CO")
    assert truth.serving_country in ("CO", "BR") or \
        truth.serving_country == truth.registered_country
    assert truth.serving_country != "BR"


def test_global_foreign_pins_partner_pop(generator):
    truth = _deploy(generator, 6, category=HostingCategory.P3_GLOBAL,
                    foreign=True, partner="DE")
    assert truth.serving_country == "DE"
    assert not truth.anycast


def test_global_domestic_unicast_or_anycast(generator):
    seen_anycast = False
    seen_unicast = False
    for n in range(20):
        truth = _deploy(generator, 100 + n,
                        category=HostingCategory.P3_GLOBAL)
        if truth.anycast:
            seen_anycast = True
            assert generator.anycast_index.is_anycast(truth.address)
        else:
            seen_unicast = True
            assert truth.serving_country in ("BR",) or True
    assert seen_anycast and seen_unicast


def test_fresh_ip_never_reuses_addresses(generator):
    addresses = {
        _deploy(generator, 200 + n, category=HostingCategory.P3_GLOBAL,
                foreign=True, partner="US", fresh_ip=True).address
        for n in range(8)
    }
    assert len(addresses) == 8


def test_unique_hostname_disambiguation(generator):
    first = generator._unique_hostname("clash.gov.br")
    second = generator._unique_hostname("clash.gov.br")
    assert first == "clash.gov.br"
    assert second != first
    assert second.endswith(".gov.br")
