"""Tests for the world generator: structure and internal consistency."""

import pytest

from repro import SyntheticWorld, WorldConfig
from repro.categories import HostingCategory
from repro.netsim.asn import ASKind
from repro.urltools import hostname_of


def test_generation_is_deterministic():
    config = WorldConfig(seed=11, scale=0.02, countries=("BR", "JP"))
    world_a = SyntheticWorld.generate(config)
    world_b = SyntheticWorld.generate(config)
    assert set(world_a.truth.hosts) == set(world_b.truth.hosts)
    for hostname, truth in world_a.truth.hosts.items():
        other = world_b.truth.hosts[hostname]
        assert truth == other
    assert world_a.truth.directories == world_b.truth.directories


def test_different_seeds_differ():
    a = SyntheticWorld.generate(WorldConfig(seed=1, scale=0.02, countries=("BR",)))
    b = SyntheticWorld.generate(WorldConfig(seed=2, scale=0.02, countries=("BR",)))
    assert set(a.truth.hosts) != set(b.truth.hosts)


def test_every_directory_url_is_served(world):
    for code, urls in world.truth.directories.items():
        for url in urls:
            page = world.web.fetch(url, code)
            assert page.url == url


def test_every_truth_host_resolves_from_home_vantage(world):
    for hostname, truth in world.truth.hosts.items():
        vantage = world.vpn.vantage_for(truth.country)
        resolution = world.resolver.resolve(hostname, vantage.lat, vantage.lon)
        assert resolution.address == truth.address


def test_truth_addresses_are_registered(world):
    for truth in world.truth.hosts.values():
        entry = world.registry.lookup(truth.address)
        assert entry.asn == truth.asn
        assert entry.registration_country == truth.registered_country


def test_unicast_truth_serving_country_matches_fabric(world):
    for truth in world.truth.hosts.values():
        if truth.anycast:
            continue
        pop = world.fabric.unicast_location(truth.address)
        assert pop.country == truth.serving_country


def test_anycast_truth_matches_home_catchment(world):
    from repro.world.cities import capital_of

    for truth in world.truth.hosts.values():
        if not truth.anycast:
            continue
        capital = capital_of(truth.country)
        site = world.fabric.server_site(truth.address, capital.lat, capital.lon)
        assert site.country == truth.serving_country


def test_korea_generates_no_sites(world):
    assert world.truth.directories["KR"] == []
    assert not world.truth.hosts_of("KR")


def test_gov_soe_hosts_use_government_networks(world):
    for truth in world.truth.hosts.values():
        autonomous_system = world.registry.get_as(truth.asn)
        if truth.category is HostingCategory.GOVT_SOE:
            assert autonomous_system.kind.is_government_operated
        else:
            assert not autonomous_system.kind.is_government_operated


def test_local_category_registered_domestically(world):
    for truth in world.truth.hosts.values():
        if truth.category is HostingCategory.P3_LOCAL:
            assert truth.registered_country == truth.country


def test_regional_category_registered_abroad_same_continent(world):
    from repro.world.countries import get_country

    for truth in world.truth.hosts.values():
        if truth.category is not HostingCategory.P3_REGIONAL:
            continue
        assert truth.registered_country != truth.country
        autonomous_system = world.registry.get_as(truth.asn)
        assert autonomous_system.kind is ASKind.REGIONAL_HOSTING


def test_france_new_caledonia_special_case(world):
    gouv_nc = world.truth.hosts.get("gouv.nc")
    assert gouv_nc is not None
    assert gouv_nc.country == "FR"
    assert gouv_nc.serving_country == "NC"
    assert gouv_nc.asn == 18200
    assert gouv_nc.category is HostingCategory.GOVT_SOE
    # The OPT share of France's URL budget approximates 18.03%.
    fr_budget = sum(
        len(world.web.site_of(t.hostname).unique_urls())
        for t in world.truth.hosts_of("FR")
        if world.web.site_of(t.hostname) is not None
    )
    nc_budget = len(world.web.site_of("gouv.nc").unique_urls())
    assert nc_budget / fr_budget == pytest.approx(0.18, abs=0.06)


def test_dutch_bilateral_deployments(world):
    for hostname, expected in (("dutchculturekorea.com", "KR"),
                               ("nbso-brazil.com.br", "BR")):
        truth = world.truth.hosts.get(hostname)
        assert truth is not None, hostname
        assert truth.country == "NL"
        assert truth.serving_country == expected
        assert truth.expected_filter == "san"


def test_san_sites_listed_on_anchor_certificate(world):
    for code, anchor in world.truth.san_anchor.items():
        sans = world.certificates.sans_of(anchor)
        san_hosts = [
            t.hostname for t in world.truth.hosts_of(code)
            if t.expected_filter == "san"
        ]
        for hostname in san_hosts:
            assert hostname in sans


def test_measurement_databases_cover_every_address(world):
    for truth in world.truth.hosts.values():
        assert world.ipinfo.lookup(truth.address) is not None


def test_topsites_generated_for_comparison_countries(world):
    from repro.websim.topsites import COMPARISON_COUNTRIES

    assert set(world.topsites) == set(COMPARISON_COUNTRIES)
    for code, sites in world.topsites.items():
        assert len(sites) == world.config.topsites_per_country
        for topsite in sites:
            assert world.web.site_of(topsite.hostname) is not None


def test_scale_controls_dataset_size():
    small = SyntheticWorld.generate(
        WorldConfig(seed=5, scale=0.02, countries=("DE",), include_topsites=False)
    )
    large = SyntheticWorld.generate(
        WorldConfig(seed=5, scale=0.08, countries=("DE",), include_topsites=False)
    )
    assert len(large.truth.hosts) > len(small.truth.hosts)
    assert large.web.page_count > small.web.page_count


def test_mission_sites_serve_from_their_destination(world):
    missions = [
        t for t in world.truth.hosts.values()
        if t.hostname.startswith("mission-")
    ]
    assert missions, "expected at least some mission sites"
    for truth in missions:
        destination = truth.hostname.split("-")[1].split(".")[0].upper()
        assert truth.serving_country == destination
        assert truth.category is HostingCategory.P3_GLOBAL


def test_directory_hostnames_consistent_with_truth(world):
    for code, urls in world.truth.directories.items():
        for url in urls:
            hostname = hostname_of(url)
            assert hostname in world.truth.hosts
            assert world.truth.hosts[hostname].country == code
