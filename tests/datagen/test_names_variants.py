"""Tests for name pools and generator configuration variants."""

import itertools

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.datagen.names import (
    AGENCY_NAMES,
    MINISTRY_SECTORS,
    SOE_NAMES,
    government_org_name,
    iter_site_names,
    soe_org_name,
)
from repro.datagen.seeds import derive_rng
from repro.websim.sites import SiteKind


def test_name_pools_are_disjoint_enough():
    assert not set(MINISTRY_SECTORS) & set(SOE_NAMES)
    assert not set(AGENCY_NAMES) & set(SOE_NAMES)


def test_iter_site_names_is_infinite_and_unique():
    rng = derive_rng(1, "names")
    names = list(itertools.islice(iter_site_names(SiteKind.AGENCY, rng), 200))
    assert len(names) == len(set(names))
    # Pool wraps around with numeric suffixes.
    assert any(name[-1].isdigit() for name in names[len(AGENCY_NAMES):])


def test_org_names_mention_country():
    rng = derive_rng(2, "org")
    name = government_org_name("health", "Brazil", rng)
    assert "Brazil" in name
    assert "Health" in name


def test_soe_org_name_variants():
    rng = derive_rng(3, "soe")
    names = {soe_org_name("petro-fiscal", "Brazil", rng) for _ in range(20)}
    # Both templates appear: with and without the country name.
    assert any("Brazil" in name for name in names)
    assert any("S.A." in name for name in names)


def test_no_topsites_variant():
    world = SyntheticWorld.generate(WorldConfig(
        seed=9, scale=0.03, countries=("US", "JP"), include_topsites=False,
    ))
    assert world.topsites == {}


def test_no_anycast_variant():
    config = WorldConfig(seed=9, scale=0.03, countries=("US", "GB"),
                         include_topsites=False)
    world = SyntheticWorld.generate(config)
    # anycast share is profile-driven; with anycast there should be groups.
    assert len(world.anycast_index) >= 0  # smoke
    dataset = Pipeline(world).run(["US", "GB"])
    assert dataset.summarize().total_unique_urls > 0


def test_zero_geo_dns_variant():
    world = SyntheticWorld.generate(WorldConfig(
        seed=9, scale=0.03, countries=("US",), include_topsites=False,
        geo_dns_prob=0.0,
    ))
    from repro.netsim.dns import GeoARecord

    geo_records = [
        world.zone.get(host) for host in world.truth.hosts
        if isinstance(world.zone.get(host), GeoARecord)
    ]
    assert geo_records == []


def test_full_external_ratio_zero():
    world = SyntheticWorld.generate(WorldConfig(
        seed=9, scale=0.03, countries=("UY",), include_topsites=False,
        external_url_ratio=0.0,
    ))
    for site in world.web.iter_sites():
        for page in site.iter_pages():
            for resource in page.resources:
                assert "contractor" not in resource.hostname


def test_single_country_world_runs_pipeline():
    world = SyntheticWorld.generate(WorldConfig(
        seed=9, scale=0.05, countries=("FR",), include_topsites=False,
    ))
    dataset = Pipeline(world).run(["FR"])
    assert "gouv.nc" in dataset.countries["FR"].hostnames
    summary = dataset.summarize()
    assert summary.countries_with_servers >= 2  # FR + NC at least


def test_drifted_world_still_measures():
    world = SyntheticWorld.generate(WorldConfig(
        seed=9, scale=0.03, countries=("ES",), include_topsites=False,
        third_party_drift=0.2,
    ))
    dataset = Pipeline(world).run(["ES"])
    assert dataset.countries["ES"].records


def test_invalid_drift_rejected():
    with pytest.raises(ValueError):
        WorldConfig(third_party_drift=1.5)
