"""Tests asserting generator-vs-profile calibration quality."""

import pytest

from repro.datagen.calibration import calibrate, country_calibration
from repro.world.profiles import get_profile


@pytest.fixture(scope="module")
def report(dataset):
    return calibrate(dataset)


def test_report_covers_measured_countries(report, dataset):
    measured = {c for c, cd in dataset.countries.items() if cd.records}
    assert set(report.countries) == measured


def test_mean_mix_error_is_small(report):
    # At the session scale, the URL-weighted greedy assignment keeps the
    # mean per-country deviation within a few points.
    assert report.mean_url_mix_error < 0.12


def test_mean_intl_error_is_small(report):
    assert report.mean_intl_error < 0.10


def test_site_rich_countries_calibrate_tightly(report):
    # Quantization hurts only host-poor countries (e.g. Hungary packs 204k
    # URLs into ~70 hostnames); countries with many sites must be close to
    # their targets.
    for code in ("US", "BE", "DE", "NL", "CL"):
        calibration = report.countries[code]
        assert calibration.sites >= 10, code
        assert calibration.url_mix_error < 0.13, code
        assert calibration.intl_error < 0.10, code


def test_worst_returns_sorted(report):
    worst = report.worst(3)
    assert len(worst) == 3
    assert worst[0].url_mix_error >= worst[1].url_mix_error >= worst[2].url_mix_error


def test_country_calibration_against_explicit_profile(dataset):
    calibration = country_calibration(dataset, "UY", get_profile("UY"))
    assert calibration.country == "UY"
    assert calibration.sites > 0
    assert calibration.url_mix_error < 0.25
