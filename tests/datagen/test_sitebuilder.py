"""Tests for site-tree construction and the largest-remainder helper."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.datagen.sitebuilder import SiteBuildSpec, build_site, largest_remainder
from repro.websim.sites import SiteKind

_DEPTHS = (0.84, 0.11, 0.025, 0.012, 0.006, 0.004, 0.002, 0.001)


def test_largest_remainder_exact_total():
    counts = largest_remainder(10, [1, 1, 1])
    assert sum(counts) == 10
    assert sorted(counts) == [3, 3, 4]


def test_largest_remainder_zero_total():
    assert largest_remainder(0, [1, 2]) == [0, 0]


def test_largest_remainder_rejects_bad_input():
    with pytest.raises(ValueError):
        largest_remainder(-1, [1])
    with pytest.raises(ValueError):
        largest_remainder(5, [0, 0])


@given(
    st.integers(min_value=0, max_value=5000),
    st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=20),
)
def test_largest_remainder_properties(total, weights):
    counts = largest_remainder(total, weights)
    assert sum(counts) == total
    assert all(c >= 0 for c in counts)
    # Within one unit of exact proportionality.
    weight_sum = sum(weights)
    for count, weight in zip(counts, weights):
        assert abs(count - total * weight / weight_sum) <= 1.0 + 1e-9


def _build(budget=200, paths=None, **kwargs):
    spec = SiteBuildSpec(
        hostname="www.health.gov.br",
        country="BR",
        kind=SiteKind.MINISTRY,
        landing_paths=paths or ["/"],
        internal_budget=budget,
        size_sampler=lambda: 1000,
        **kwargs,
    )
    return build_site(spec, _DEPTHS, random.Random(5))


def test_site_url_budget_is_exact():
    site = _build(budget=200)
    # budget + one page URL per landing path
    assert len(site.unique_urls()) == 201


def test_site_depth_distribution_shape():
    site = _build(budget=1000)
    landing = site.landing_page()
    depth0 = len(landing.resources) + 1
    assert depth0 / 1001 == pytest.approx(0.84, abs=0.03)
    assert site.max_depth <= 7


def test_multi_landing_paths():
    site = _build(budget=300, paths=["/", "/portal1/", "/portal2/"])
    depth0_pages = [p for p in site.pages.values() if p.depth == 0]
    assert len(depth0_pages) == 3
    assert len(site.unique_urls()) == 303


def test_every_deep_page_is_linked_from_previous_level():
    site = _build(budget=2000)
    linked = set()
    for page in site.pages.values():
        linked.update(page.links)
    for page in site.pages.values():
        if page.depth > 0:
            assert page.url in linked


def test_static_hostname_receives_resources():
    site = _build(budget=500, static_hostname="static.health.gov.br")
    hosts = {r.hostname for p in site.pages.values() for r in p.resources}
    assert "static.health.gov.br" in hosts


def test_external_resources_added_on_top_of_budget():
    site = _build(budget=500, external_ratio=0.1,
                  external_hosts=("cdn1.contractor.com",))
    external = [
        r for p in site.pages.values() for r in p.resources
        if r.hostname == "cdn1.contractor.com"
    ]
    assert external
    own = site.unique_urls() - {r.url for r in external}
    assert len(own) == 501


def test_extra_links_attached_to_landing():
    site = _build(budget=50, extra_links=("https://other.example/",))
    assert "https://other.example/" in site.landing_page().links


def test_empty_landing_paths_rejected():
    spec = SiteBuildSpec(
        hostname="h", country="BR", kind=SiteKind.AGENCY,
        landing_paths=[], internal_budget=1, size_sampler=lambda: 1,
    )
    with pytest.raises(ValueError):
        build_site(spec, _DEPTHS, random.Random(1))


def test_tiny_budget_site():
    site = _build(budget=1)
    assert len(site.unique_urls()) == 2
