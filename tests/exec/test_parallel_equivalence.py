"""Parallel-vs-serial equivalence of the pipeline execution layer.

The contract of ``repro.exec`` is strict: every strategy, at every
worker count, produces a dataset **bit-identical** to the serial run —
same records, same validation stats, same Table 3/4 summaries — because
per-country work is order-independent and the cross-country reductions
merge deterministically.
"""

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.exec import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)

COUNTRIES = ("BR", "US", "FR", "MA")


@pytest.fixture(scope="module")
def exec_world() -> SyntheticWorld:
    return SyntheticWorld.generate(
        WorldConfig(seed=13, scale=0.03, countries=COUNTRIES,
                    include_topsites=False)
    )


@pytest.fixture(scope="module")
def serial_baseline(exec_world):
    return Pipeline(exec_world).run(list(COUNTRIES))


def _fingerprint(dataset):
    """Everything the equivalence contract covers, in comparable form."""
    return (
        sorted(dataset.iter_records(), key=lambda r: (r.country, r.url)),
        dataset.validation,
        dataset.summarize(),
        dataset.validation.table4(),
        dataset.per_country_stats(),
        {code: ds.depth_histogram for code, ds in dataset.countries.items()},
        {code: sorted(ds.unresolved_hostnames)
         for code, ds in dataset.countries.items()},
    )


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("strategy", ["serial", "threads", "processes"])
def test_every_strategy_matches_serial(exec_world, serial_baseline,
                                       strategy, workers):
    if strategy == "serial" and workers > 1:
        pytest.skip("serial has no worker knob")
    executor = make_executor(strategy, workers=workers)
    try:
        dataset = Pipeline(exec_world).run(list(COUNTRIES), executor=executor)
    finally:
        executor.close()
    assert _fingerprint(dataset) == _fingerprint(serial_baseline)


@pytest.mark.parametrize("seed", [3, 11])
def test_process_pool_matches_serial_across_seeds(seed):
    config = WorldConfig(seed=seed, scale=0.02, countries=("BR", "JP"),
                         include_topsites=False)
    world = SyntheticWorld.generate(config)
    serial = Pipeline(world).run(["BR", "JP"])
    executor = ProcessExecutor(workers=2)
    try:
        parallel = Pipeline(world).run(["BR", "JP"], executor=executor)
    finally:
        executor.close()
    assert _fingerprint(parallel) == _fingerprint(serial)


def test_executor_pool_is_reusable_across_runs(exec_world, serial_baseline):
    executor = ThreadExecutor(workers=2)
    try:
        first = Pipeline(exec_world).run(list(COUNTRIES), executor=executor)
        second = Pipeline(exec_world).run(list(COUNTRIES), executor=executor)
    finally:
        executor.close()
    assert _fingerprint(first) == _fingerprint(serial_baseline)
    assert _fingerprint(second) == _fingerprint(serial_baseline)


def test_country_order_does_not_change_records(exec_world):
    """Submission order fixes the stats replay, not the records."""
    forward = Pipeline(exec_world).run(list(COUNTRIES))
    backward = Pipeline(exec_world).run(list(reversed(COUNTRIES)))
    key = lambda r: (r.country, r.url)
    assert sorted(forward.iter_records(), key=key) == \
        sorted(backward.iter_records(), key=key)


def test_make_executor_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown executor"):
        make_executor("fibers")


def test_process_executor_rejects_custom_geolocator(exec_world):
    from repro.core.geolocation import Geolocator

    pipeline = Pipeline(exec_world)
    custom = Pipeline(
        exec_world,
        geolocator=Geolocator(
            ipinfo=exec_world.ipinfo, manycast=exec_world.manycast,
            atlas=pipeline.atlas, hoiho=exec_world.hoiho,
            ipmap=exec_world.ipmap, enable_active_probing=False,
        ),
    )
    executor = ProcessExecutor(workers=1)
    try:
        with pytest.raises(ValueError, match="default geolocator"):
            custom.run(["BR"], executor=executor)
    finally:
        executor.close()


def test_serial_executor_is_default(exec_world, serial_baseline):
    explicit = Pipeline(exec_world).run(list(COUNTRIES),
                                        executor=SerialExecutor())
    assert _fingerprint(explicit) == _fingerprint(serial_baseline)
